//! Multi-tenant open-loop load generator for `mx-serve`: requests arrive
//! on a fixed schedule (`--rate` per second aggregate, optionally in
//! bursts) regardless of how fast responses come back, so what gets
//! measured is **service latency under offered load** — queueing included
//! — rather than the closed-loop burst latency the `serving_throughput`
//! bench reports. Tenant models are picked per request from a Zipf
//! popularity distribution (`--zipf`), arrivals can be bursty (`--burst`),
//! and `--mixed-lens` switches the tenants to variable-length GPT models
//! with bucketed sequence lengths. Latency percentiles come from
//! [`mx_serve::ServeStats`] (enqueue → batch executed, nearest-rank
//! p50/p99/p999 over the server's latency ring; shed and expired requests
//! are rejected with typed errors and never enter the ring).
//!
//! ```text
//! # saturation knee, single tenant (the classic sweep):
//! cargo run --release -p mx-bench --bin serve_loadgen -- \
//!     --rate 2000 --requests 20000 --max-batch 32 --workers 1
//!
//! # overload with admission control: bounded queues + shedding + SLO
//! cargo run --release -p mx-bench --bin serve_loadgen -- \
//!     --rate 16000 --requests 32000 --tenants 4 --shards 2 \
//!     --queue-cap 256 --shed --slo-us 20000
//! ```
//!
//! The default tenant model is the GPT-ish FFN shard the serving benches
//! use (one 512 → 2048 dense layer, MX6 weights and activations, weight
//! plane packed once per tenant and shared by every batch). Sweep `--rate`
//! upward until p99 diverges to find the box's saturation knee, then
//! offer a multiple of the knee with and without `--shed`/`--slo-us` to
//! see admission control hold the accepted-request tail. `MX_SERVE_SHARDS`
//! sets the default shard count.

use mx_models::gpt::{Gpt, GptConfig};
use mx_models::zoo::DenseGemm;
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use mx_serve::{
    AdmissionConfig, Pending, Priority, Request, RequestInput, ServeError, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Command-line knobs (every flag but `--pad`, `--shed`, and
/// `--mixed-lens` takes a value; see module docs).
struct Args {
    /// Aggregate offered arrival rate, requests per second.
    rate: f64,
    /// Total requests to inject.
    requests: usize,
    /// Server worker threads per shard.
    workers: usize,
    /// Registry shards (default: `MX_SERVE_SHARDS`, else 1).
    shards: usize,
    /// Dispatcher coalescing bound.
    max_batch: usize,
    /// Tenant models sharing the server.
    tenants: usize,
    /// Zipf popularity skew across tenants (0 = uniform).
    zipf: f64,
    /// Arrivals come `burst` at a time on the schedule (1 = smooth).
    burst: usize,
    /// Model input width (`K`) for the dense tenants.
    d_in: usize,
    /// Model output width (`N`) for the dense tenants.
    d_out: usize,
    /// Pad ragged batches to `max_batch`.
    pad: bool,
    /// Variable-length GPT tenants with bucketed sequence lengths instead
    /// of fixed-width dense tenants.
    mixed_lens: bool,
    /// Bound on each shard's job queue (`0` = unbounded).
    queue_cap: usize,
    /// Shed with `Overloaded` when the shard queue is full instead of
    /// blocking the arrival loop.
    shed: bool,
    /// Latency-SLO admission budget in µs (`0` = no SLO gate).
    slo_us: u64,
    /// Per-request deadline in µs (`0` = none).
    deadline_us: u64,
}

impl Default for Args {
    fn default() -> Self {
        // MX_BENCH_THREADS picks the default worker count (0 = all cores,
        // matching the knob's contract everywhere else); MX_SERVE_SHARDS
        // picks the default shard count.
        let workers = match mx_bench::bench_threads(1) {
            0 => mx_core::parallel::default_threads(),
            w => w,
        };
        let shards = mx_core::knobs::raw("MX_SERVE_SHARDS")
            .and_then(|v| v.parse().ok())
            .filter(|&s| s > 0)
            .unwrap_or(1);
        Args {
            rate: 200.0,
            requests: 2000,
            workers,
            shards,
            max_batch: 32,
            tenants: 1,
            zipf: 1.1,
            burst: 1,
            d_in: 512,
            d_out: 2048,
            pad: false,
            mixed_lens: false,
            queue_cap: 0,
            shed: false,
            slo_us: 0,
            deadline_us: 0,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--rate" => args.rate = take("--rate").parse().expect("--rate: float"),
            "--requests" => args.requests = take("--requests").parse().expect("--requests: int"),
            "--workers" => args.workers = take("--workers").parse().expect("--workers: int"),
            "--shards" => args.shards = take("--shards").parse().expect("--shards: int"),
            "--max-batch" => {
                args.max_batch = take("--max-batch").parse().expect("--max-batch: int")
            }
            "--tenants" => args.tenants = take("--tenants").parse().expect("--tenants: int"),
            "--zipf" => args.zipf = take("--zipf").parse().expect("--zipf: float"),
            "--burst" => args.burst = take("--burst").parse().expect("--burst: int"),
            "--d-in" => args.d_in = take("--d-in").parse().expect("--d-in: int"),
            "--d-out" => args.d_out = take("--d-out").parse().expect("--d-out: int"),
            "--pad" => args.pad = true,
            "--mixed-lens" => args.mixed_lens = true,
            "--queue-cap" => {
                args.queue_cap = take("--queue-cap").parse().expect("--queue-cap: int")
            }
            "--shed" => args.shed = true,
            "--slo-us" => args.slo_us = take("--slo-us").parse().expect("--slo-us: int"),
            "--deadline-us" => {
                args.deadline_us = take("--deadline-us").parse().expect("--deadline-us: int")
            }
            other => panic!(
                "unknown flag {other:?} (flags: --rate --requests --workers --shards \
                 --max-batch --tenants --zipf --burst --d-in --d-out --pad --mixed-lens \
                 --queue-cap --shed --slo-us --deadline-us)"
            ),
        }
    }
    assert!(args.rate > 0.0, "--rate must be positive");
    assert!(args.tenants > 0, "--tenants must be positive");
    assert!(args.burst > 0, "--burst must be positive");
    assert!(
        args.requests >= 100,
        "--requests must be at least 100: the percentile population has to \
         dwarf the per-tenant warm-up samples (whose latency includes the \
         one-time weight-plane pack)"
    );
    args
}

fn request_row(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

/// Cumulative Zipf popularity table over `n` tenants: tenant `r` (0-based)
/// has weight `1 / (r + 1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let cfg = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
    let gpt_seq = GptConfig::tiny().seq_len;
    let buckets = [gpt_seq / 4, gpt_seq / 2, gpt_seq];
    let mut admission = AdmissionConfig::new().shed_on_full(args.shed);
    if args.queue_cap > 0 {
        admission = admission.queue_capacity(args.queue_cap);
    }
    if args.slo_us > 0 {
        admission = admission.slo(Duration::from_micros(args.slo_us));
    }
    let mut server = Server::new(
        ServerConfig::default()
            .workers(args.workers)
            .shards(args.shards)
            .max_batch(args.max_batch)
            .pad_batches(args.pad)
            .buckets(buckets)
            .admission(admission),
    );
    let mut rng = StdRng::seed_from_u64(5);
    let tenant_names: Vec<String> = (0..args.tenants).map(|t| format!("t{t}")).collect();
    for name in &tenant_names {
        if args.mixed_lens {
            server.register(name, Box::new(Gpt::new(&mut rng, GptConfig::tiny(), cfg)));
        } else {
            server.register(
                name,
                Box::new(DenseGemm::new(
                    &mut rng,
                    args.d_in,
                    args.d_out,
                    QuantConfig::fp32(),
                )),
            );
        }
    }
    let handle = server.start()?;

    let payload = |rng: &mut StdRng, salt: usize| -> RequestInput {
        if args.mixed_lens {
            let len = rng.gen_range(1..=gpt_seq);
            RequestInput::Tokens((0..len).map(|i| (i * 7 + salt) % 24).collect())
        } else {
            RequestInput::Pixels(request_row(args.d_in, salt % 64 + 1))
        }
    };

    // Warm every tenant to steady state before the measured window: the
    // first request pays the one-time weight-plane pack (milliseconds),
    // and the admission controller's service-time EWMA must settle to the
    // steady-state per-request cost — otherwise an SLO gate seeded by the
    // pack-inflated first observation would shed everything and, with no
    // admitted traffic to update the estimate, never recover. Eight
    // smoothing steps bring the EWMA within ~13% of the pack-free cost.
    for name in &tenant_names {
        for w in 0..8 {
            // High priority bypasses the SLO gate: warmup must land even
            // while the pack-inflated first observation busts the budget.
            handle.infer(
                Request::new(name, payload(&mut rng, w))
                    .quant(cfg)
                    .priority(Priority::High),
            )?;
        }
    }

    let cdf = zipf_cdf(args.tenants, args.zipf);
    println!(
        "open-loop: {} requests at {:.0} req/s aggregate (burst {}), {} tenant(s) zipf {:.2}, {}, \
         shards={}, workers/shard={}, max_batch={}{}, queue_cap={}, shed={}, slo={}us, \
         deadline={}us, kernel backend={}",
        args.requests,
        args.rate,
        args.burst,
        args.tenants,
        args.zipf,
        if args.mixed_lens {
            format!("GPT-tiny mixed lens buckets {buckets:?}")
        } else {
            format!("{}x{} MX6 FFN", args.d_in, args.d_out)
        },
        args.shards,
        args.workers,
        args.max_batch,
        if args.pad { ", padded" } else { "" },
        args.queue_cap,
        args.shed,
        args.slo_us,
        args.deadline_us,
        mx_core::gemm::kernel_backend_name(),
    );

    let start = Instant::now();
    let mut late = 0usize;
    let mut shed_at_submit = 0usize;
    let mut expired_at_submit = 0usize;
    let mut tenant_offered = vec![0usize; args.tenants];
    let mut pending: Vec<Pending> = Vec::with_capacity(args.requests);
    for i in 0..args.requests {
        // Bursty fixed schedule: request i is due when its burst is, at
        // (i / burst) · (burst / rate) seconds. If the submitter falls
        // behind (only queue backpressure or this loop's own overhead can
        // cause that), the request goes out immediately and is counted as
        // late.
        let due = start
            + Duration::from_secs_f64((i / args.burst) as f64 * args.burst as f64 / args.rate);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        } else if now > due + Duration::from_millis(1) {
            late += 1;
        }
        let tenant = sample_zipf(&cdf, &mut rng);
        tenant_offered[tenant] += 1;
        let mut req = Request::new(&tenant_names[tenant], payload(&mut rng, i)).quant(cfg);
        if args.deadline_us > 0 {
            req = req.deadline(Duration::from_micros(args.deadline_us));
        }
        match handle.submit(req) {
            Ok(p) => pending.push(p),
            Err(ServeError::Overloaded { .. }) => shed_at_submit += 1,
            Err(ServeError::DeadlineExceeded { .. }) => expired_at_submit += 1,
            Err(other) => return Err(other.into()),
        }
    }
    let offered_window = start.elapsed();
    let mut answered = 0usize;
    let mut expired_in_queue = 0usize;
    for p in pending {
        match p.wait() {
            Ok(_) => answered += 1,
            Err(ServeError::DeadlineExceeded { .. }) => expired_in_queue += 1,
            Err(other) => return Err(other.into()),
        }
    }
    let drained = start.elapsed();

    let stats = handle.stats();
    let accepted = answered + expired_in_queue;
    let achieved = answered as f64 / drained.as_secs_f64();
    println!(
        "submitted in {:.2}s ({} late submissions), drained in {:.2}s",
        offered_window.as_secs_f64(),
        late,
        drained.as_secs_f64(),
    );
    println!(
        "admission: {} offered -> {} accepted, {} shed at submit, {} expired \
         ({} at submit, {} in queue) — every rejection typed, none dropped",
        args.requests,
        accepted,
        shed_at_submit,
        expired_at_submit + expired_in_queue,
        expired_at_submit,
        expired_in_queue,
    );
    println!(
        "throughput: {achieved:.1} req/s answered vs {:.1} req/s offered",
        args.rate
    );
    println!(
        "batches: {} over {} requests (mean coalesced {:.1}, histogram tail bucket {} full)",
        stats.batches,
        stats.completed,
        stats.mean_batch_size(),
        stats.batch_histogram.last().copied().unwrap_or(0),
    );
    println!(
        "accepted-request latency: p50 {} us, p99 {} us, p999 {} us",
        stats.p50_latency_us, stats.p99_latency_us, stats.p999_latency_us
    );
    println!(
        "server counters: shed {}, expired {}, shard depths {:?}",
        stats.shed, stats.expired, stats.shard_depths
    );
    if args.tenants > 1 {
        let mix: Vec<String> = tenant_offered
            .iter()
            .enumerate()
            .map(|(t, &n)| format!("t{t}:{n}"))
            .collect();
        println!("tenant mix (zipf {:.2}): {}", args.zipf, mix.join(" "));
    }
    println!(
        "weight planes: {} packs performed, {} avoided via the shared cache",
        stats.packs_performed, stats.packs_avoided
    );
    println!(
        "execution plans: {} compiled, {} cache hits, {} prepacks hoisted, {} arena bytes",
        stats.plans_compiled, stats.plan_cache_hits, stats.prepack_hoists, stats.plan_arena_bytes
    );
    handle.shutdown();
    Ok(())
}
