//! Open-loop load generator for `mx-serve`: requests arrive on a fixed
//! schedule (`--rate` per second) regardless of how fast responses come
//! back, so what gets measured is **service latency under offered load** —
//! queueing included — rather than the closed-loop burst latency the
//! `serving_throughput` bench reports (where the client's own waiting
//! throttles the arrival process). Latency percentiles come from
//! [`mx_serve::ServeStats`] (enqueue → batch executed, nearest-rank
//! p50/p99 over the server's latency ring).
//!
//! ```text
//! cargo run --release -p mx-bench --bin serve_loadgen -- \
//!     --rate 200 --requests 2000 --max-batch 32 --workers 1
//! ```
//!
//! The model is the GPT-ish FFN shard the serving benches use (one
//! 512 → 2048 dense layer, MX6 weights and activations, weight plane
//! packed once and shared by every batch). Sweep `--rate` upward until p99
//! diverges to find the box's saturation point; on a multi-core machine
//! raise `--workers` (or set `MX_BENCH_THREADS`) and watch the knee move.

use mx_models::zoo::DenseGemm;
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use mx_serve::{Pending, RequestInput, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Command-line knobs (every flag takes a value; see module docs).
struct Args {
    /// Offered arrival rate, requests per second.
    rate: f64,
    /// Total requests to inject.
    requests: usize,
    /// Server worker threads.
    workers: usize,
    /// Dispatcher coalescing bound.
    max_batch: usize,
    /// Model input width (`K`).
    d_in: usize,
    /// Model output width (`N`).
    d_out: usize,
    /// Pad ragged batches to `max_batch`.
    pad: bool,
}

impl Default for Args {
    fn default() -> Self {
        // MX_BENCH_THREADS picks the default worker count (0 = all cores,
        // matching the knob's contract everywhere else).
        let workers = match mx_bench::bench_threads(1) {
            0 => mx_core::parallel::default_threads(),
            w => w,
        };
        Args {
            rate: 200.0,
            requests: 2000,
            workers,
            max_batch: 32,
            d_in: 512,
            d_out: 2048,
            pad: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--rate" => args.rate = take("--rate").parse().expect("--rate: float"),
            "--requests" => args.requests = take("--requests").parse().expect("--requests: int"),
            "--workers" => args.workers = take("--workers").parse().expect("--workers: int"),
            "--max-batch" => {
                args.max_batch = take("--max-batch").parse().expect("--max-batch: int")
            }
            "--d-in" => args.d_in = take("--d-in").parse().expect("--d-in: int"),
            "--d-out" => args.d_out = take("--d-out").parse().expect("--d-out: int"),
            "--pad" => args.pad = true,
            other => panic!(
                "unknown flag {other:?} (flags: --rate --requests --workers --max-batch \
                 --d-in --d-out --pad)"
            ),
        }
    }
    assert!(args.rate > 0.0, "--rate must be positive");
    assert!(
        args.requests >= 100,
        "--requests must be at least 100: the percentile population has to \
         dwarf the one warm-up sample (whose latency includes the one-time \
         weight-plane pack)"
    );
    args
}

fn request_row(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let cfg = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
    let mut rng = StdRng::seed_from_u64(5);
    let mut server = Server::new(ServerConfig {
        workers: args.workers,
        max_batch: args.max_batch,
        pad_batches: args.pad,
        queue_capacity: None, // open loop: arrivals must never block
    });
    server.register(
        "ffn",
        Box::new(DenseGemm::new(
            &mut rng,
            args.d_in,
            args.d_out,
            QuantConfig::fp32(),
        )),
    );
    let handle = server.start();
    // Warm the weight plane so the measured window is steady state (the
    // one warm-up sample is negligible against the run's percentiles).
    handle
        .infer("ffn", cfg, RequestInput::Pixels(request_row(args.d_in, 0)))
        .expect("warm-up request");

    // A small pool of distinct rows keeps the payloads varied without
    // per-request generation cost on the submission thread.
    let rows: Vec<Vec<f32>> = (0..64).map(|s| request_row(args.d_in, s + 1)).collect();
    println!(
        "open-loop: {} requests at {:.0} req/s ({}x{} MX6 FFN, workers={}, max_batch={}{}, kernel backend={})",
        args.requests,
        args.rate,
        args.d_in,
        args.d_out,
        args.workers,
        args.max_batch,
        if args.pad { ", padded" } else { "" },
        mx_core::gemm::kernel_backend_name(),
    );

    let start = Instant::now();
    let mut late = 0usize;
    let mut pending: Vec<Pending> = Vec::with_capacity(args.requests);
    for i in 0..args.requests {
        // Fixed schedule: request i is due at i / rate seconds. If the
        // submitter falls behind (the queue never blocks; only this loop's
        // own overhead can), the request goes out immediately and is
        // counted as late.
        let due = start + Duration::from_secs_f64(i as f64 / args.rate);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        } else {
            late += 1;
        }
        let row = rows[i % rows.len()].clone();
        pending.push(
            handle
                .submit("ffn", cfg, RequestInput::Pixels(row))
                .expect("submit"),
        );
    }
    let offered_window = start.elapsed();
    for p in pending {
        p.wait().expect("response");
    }
    let drained = start.elapsed();

    let stats = handle.stats();
    let achieved = args.requests as f64 / drained.as_secs_f64();
    println!(
        "submitted in {:.2}s ({} late submissions), drained in {:.2}s",
        offered_window.as_secs_f64(),
        late,
        drained.as_secs_f64(),
    );
    println!(
        "throughput: {achieved:.1} req/s achieved vs {:.1} req/s offered",
        args.rate
    );
    println!(
        "batches: {} over {} requests (mean coalesced {:.1}, histogram tail bucket {} full)",
        stats.batches,
        stats.completed,
        stats.mean_batch_size(),
        stats.batch_histogram.last().copied().unwrap_or(0),
    );
    println!(
        "service latency: p50 {} us, p99 {} us",
        stats.p50_latency_us, stats.p99_latency_us
    );
    println!(
        "weight planes: {} packs performed, {} avoided via the shared cache",
        stats.packs_performed, stats.packs_avoided
    );
    handle.shutdown();
}
