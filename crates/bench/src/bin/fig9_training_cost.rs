//! Fig. 9 — training generative models with MX6: more iterations are needed
//! to match the FP32/MX9 loss, but each iteration is ~2.8x cheaper (by the
//! Fig. 7 cost model), so total cost to quality still favors MX6.

use mx_bench::{fmt, full_scale, print_table, write_csv};
use mx_core::bdr::BdrFormat;
use mx_hw::cost::{CostModel, FormatConfig};
use mx_models::data::markov_corpus;
use mx_models::gpt::{train_lm, GptConfig};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;

fn main() {
    let corpus = markov_corpus(13, 30_000, 0.4);
    let model = CostModel::new();
    let cost9 = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX9)).product;
    let cost6 = model.evaluate(&FormatConfig::Bdr(BdrFormat::MX6)).product;
    let rel_cost6 = cost6 / cost9; // per-iteration cost of MX6, MX9 = 1.0
    println!("Per-iteration cost (tensor-unit bound): MX9 = 1.00, MX6 = {rel_cost6:.2}");

    let base_iters = if full_scale() { 300 } else { 140 };
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for step in 0..3usize {
        let config = GptConfig::ladder(step);
        let name = ["GPT-XS", "GPT-S", "GPT-M"][step];
        eprintln!("[{name}]");
        let (_, mx9) = train_lm(
            config,
            QuantConfig::uniform(TensorFormat::MX9),
            &corpus,
            base_iters,
            8,
            3e-3,
            91,
        );
        // MX6 with 50% more iterations (the paper's dashed extension).
        let mx6_iters = base_iters * 3 / 2;
        let (_, mx6) = train_lm(
            config,
            QuantConfig::uniform(TensorFormat::MX6),
            &corpus,
            mx6_iters,
            8,
            3e-3,
            91,
        );
        // Loss-vs-cost series for the CSV (cost = iters * per-iter cost).
        let eval_every9 = (base_iters / 10).max(1);
        for (i, loss) in mx9.curve.iter().enumerate() {
            series.push(vec![
                name.to_string(),
                "MX9".into(),
                ((i + 1) * eval_every9).to_string(),
                (((i + 1) * eval_every9) as f64).to_string(),
                loss.to_string(),
            ]);
        }
        let eval_every6 = (mx6_iters / 10).max(1);
        for (i, loss) in mx6.curve.iter().enumerate() {
            series.push(vec![
                name.to_string(),
                "MX6".into(),
                ((i + 1) * eval_every6).to_string(),
                (((i + 1) * eval_every6) as f64 * rel_cost6).to_string(),
                loss.to_string(),
            ]);
        }
        let mx9_cost = base_iters as f64;
        let mx6_cost = mx6_iters as f64 * rel_cost6;
        rows.push(vec![
            name.to_string(),
            fmt(mx9.eval_loss, 3),
            format!("{base_iters} iters / {mx9_cost:.0}"),
            fmt(mx6.eval_loss, 3),
            format!("{mx6_iters} iters / {mx6_cost:.0}"),
            format!("{:.2}x", mx9_cost / mx6_cost),
        ]);
    }
    print_table(
        "Fig. 9: MX6 training — more iterations, lower total cost (cost in MX9-iteration units)",
        &[
            "model",
            "MX9 loss",
            "MX9 iters/cost",
            "MX6 loss (1.5x iters)",
            "MX6 iters/cost",
            "MX9/MX6 cost ratio",
        ],
        &rows,
    );
    println!("\nShape check: with 1.5x iterations MX6 reaches (or beats) the MX9 loss");
    println!("while its total cost stays below MX9's — the crossover in Fig. 9.");
    write_csv(
        "fig9_training_cost",
        &["model", "format", "iters", "cost", "loss"],
        &series,
    );
}
