//! Fig. 3 — software INT quantization needs coarse blocks (128–8192
//! elements) to amortize its FP32 scales, while hardware BFP scales at
//! fine granularity (2–128) and achieves much higher effective resolution
//! at the same storage budget.

use mx_bench::{fmt, print_table, write_csv};
use mx_core::bdr::{BdrFormat, BdrQuantizer};
use mx_core::int_quant::IntQuantizer;
use mx_core::qsnr::{measure_qsnr, Distribution, QsnrConfig};
use mx_core::scaling::ScaleStrategy;
use mx_core::VectorQuantizer;

fn main() {
    let cfg = QsnrConfig {
        vectors: 128,
        vector_len: 8192,
        seed: 42,
    };
    let dist = Distribution::NormalVariableVariance;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for k1 in [128usize, 512, 2048, 8192] {
        for (name, strat) in [
            ("amax", ScaleStrategy::Amax),
            ("delayed", ScaleStrategy::default()),
        ] {
            let mut q = IntQuantizer::new(8, k1, strat);
            let qsnr = measure_qsnr(&mut q, dist, cfg);
            let bits = q.bits_per_element();
            rows.push(vec![
                format!("INT8 (SW {name}, k1={k1})"),
                fmt(bits, 2),
                fmt(qsnr, 1),
            ]);
            csv.push(vec![
                format!("int8_{name}_k{k1}"),
                bits.to_string(),
                qsnr.to_string(),
            ]);
        }
    }
    for k1 in [2usize, 8, 16, 64, 128] {
        let fmt8 = BdrFormat::new(7, 8, 0, k1, k1).expect("valid BFP");
        let mut q = BdrQuantizer::new(fmt8);
        let qsnr = measure_qsnr(&mut q, dist, cfg);
        let bits = fmt8.bits_per_element();
        rows.push(vec![
            format!("BFP m=7 (HW, k1={k1})"),
            fmt(bits, 2),
            fmt(qsnr, 1),
        ]);
        csv.push(vec![
            format!("bfp7_k{k1}"),
            bits.to_string(),
            qsnr.to_string(),
        ]);
    }
    print_table(
        "Fig. 3: coarse software INT vs fine-grained hardware BFP",
        &["format", "bits/element", "QSNR (dB)"],
        &rows,
    );
    println!(
        "\nShape check: BFP at k1=16 (8.5 bits) should beat INT8 at k1>=128 (8+ bits): see rows above."
    );
    write_csv(
        "fig3_int_vs_bfp",
        &["config", "bits_per_element", "qsnr_db"],
        &csv,
    );
}
