//! Table V — BERT question answering: exact match / F1 under direct cast
//! to MX9 and MX6 (the paper: no fine-tuning needed even at MX6).

use mx_bench::{full_scale, print_table, write_csv};
use mx_models::bert::{evaluate_bert_qa, train_bert_qa};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;

fn main() {
    let iters = if full_scale() { 900 } else { 450 };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, d, l) in [("BERT-Base-style", 32, 2), ("BERT-Large-style", 48, 3)] {
        eprintln!("training {name} ({iters} iters)...");
        let (mut model, base) = train_bert_qa(d, l, QuantConfig::fp32(), iters, 61);
        model.set_quant(QuantConfig::weights_activations(
            TensorFormat::MX9,
            TensorFormat::MX9,
        ));
        let mx9 = evaluate_bert_qa(&mut model, 61);
        model.set_quant(QuantConfig::weights_activations(
            TensorFormat::MX6,
            TensorFormat::MX6,
        ));
        let mx6 = evaluate_bert_qa(&mut model, 61);
        rows.push(vec![
            name.to_string(),
            format!("{:.1} / {:.1}", base.em, base.f1),
            format!("{:.1} / {:.1}", mx9.em, mx9.f1),
            format!("{:.1} / {:.1}", mx6.em, mx6.f1),
        ]);
        for (cfg, r) in [("fp32", base), ("cast_mx9", mx9), ("cast_mx6", mx6)] {
            csv.push(vec![
                name.to_string(),
                cfg.into(),
                r.em.to_string(),
                r.f1.to_string(),
            ]);
        }
    }
    print_table(
        "Table V: BERT QA, Exact Match / F1 (direct cast, no fine-tuning)",
        &[
            "model",
            "Baseline FP32",
            "Direct cast MX9",
            "Direct cast MX6",
        ],
        &rows,
    );
    write_csv("table5_bert_qa", &["model", "config", "em", "f1"], &csv);
}
