//! CPU-feature probe for CI logs: prints which SIMD feature levels the
//! runner actually has, plus the kernel backend the dispatch layer picks,
//! so bench-smoke numbers from heterogeneous runners are interpretable
//! (an "avx512 beats avx2" claim means nothing without knowing the
//! machine had AVX-512 to begin with).
//!
//! Each line is `feature: yes|no`, one feature per line, in dispatch
//! order; the final line is the resolved backend name.

use mx_core::gemm::kernel_backend_name;

#[cfg(target_arch = "x86_64")]
fn print_features() {
    let report = |name: &str, detected: bool| {
        println!("{name}: {}", if detected { "yes" } else { "no" });
    };
    report("sse2", is_x86_feature_detected!("sse2"));
    report("avx2", is_x86_feature_detected!("avx2"));
    report("avx512f", is_x86_feature_detected!("avx512f"));
    report("avx512bw", is_x86_feature_detected!("avx512bw"));
    report("avx512vnni", is_x86_feature_detected!("avx512vnni"));
}

#[cfg(not(target_arch = "x86_64"))]
fn print_features() {
    println!("(not x86_64: no x86 feature probes)");
}

fn main() {
    println!("== CPU feature probe ==");
    print_features();
    println!("kernel backend: {}", kernel_backend_name());
}
