//! Table VI — recommendation models: normalized-entropy delta of MX9 (and
//! mixed-precision MX9) training vs the FP32 baseline, for the three
//! production interaction topologies, against the run-to-run FP32 variance
//! threshold. Also probes FP8-style training, which the paper reports
//! destabilized PR-rec3.

use mx_bench::{fmt, print_table, write_csv};
use mx_core::scalar::ScalarFormat;
use mx_models::recsys::{run_recsys, Interaction};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;

fn main() {
    let iters = 90;
    // Run-to-run FP32 variance (the paper's 0.02% threshold is calibrated
    // the same way: repeated baseline runs).
    eprintln!("estimating FP32 run-to-run NE variance...");
    let seeds = [101u64, 202, 303];
    let dlrm_nes: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            run_recsys(
                Interaction::DotProduct,
                QuantConfig::fp32(),
                false,
                iters,
                s,
            )
            .ne
        })
        .collect();
    let mean = dlrm_nes.iter().sum::<f64>() / dlrm_nes.len() as f64;
    let spread = dlrm_nes
        .iter()
        .map(|v| (v - mean).abs() / mean)
        .fold(0.0f64, f64::max);
    println!(
        "FP32 run-to-run NE spread (DLRM, {} seeds): {:.3}% of mean",
        seeds.len(),
        100.0 * spread
    );

    let fp8 = QuantConfig {
        fwd: TensorFormat::ScalarScaled(ScalarFormat::E4M3),
        fwd_w: TensorFormat::ScalarScaled(ScalarFormat::E4M3),
        bwd: TensorFormat::ScalarScaled(ScalarFormat::E5M2),
        elementwise: TensorFormat::Fp32,
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, topology, interaction) in [
        ("PR-rec1", "DLRM", Interaction::DotProduct),
        ("PR-rec2", "Transformer", Interaction::Transformer),
        ("PR-rec3", "DHEN", Interaction::Dhen),
    ] {
        eprintln!("[{name} / {topology}]");
        let base = run_recsys(interaction, QuantConfig::fp32(), false, iters, 77);
        let mx9 = run_recsys(
            interaction,
            QuantConfig::uniform(TensorFormat::MX9),
            false,
            iters,
            77,
        );
        let mixed = run_recsys(
            interaction,
            QuantConfig::uniform(TensorFormat::MX9),
            true,
            iters,
            77,
        );
        let fp8_run = run_recsys(interaction, fp8, false, iters, 77);
        let d_mx9 = 100.0 * (mx9.ne - base.ne) / base.ne;
        let d_mixed = 100.0 * (mixed.ne - base.ne) / base.ne;
        let d_fp8 = 100.0 * (fp8_run.ne - base.ne) / base.ne;
        rows.push(vec![
            name.to_string(),
            topology.to_string(),
            fmt(base.ne, 4),
            format!("{d_mx9:+.2}%"),
            format!("{d_mixed:+.2}%"),
            format!("{d_fp8:+.2}%"),
            fmt(base.auc, 3),
        ]);
        csv.push(vec![
            name.to_string(),
            topology.to_string(),
            base.ne.to_string(),
            mx9.ne.to_string(),
            mixed.ne.to_string(),
            fp8_run.ne.to_string(),
        ]);
    }
    print_table(
        "Table VI: NE delta of quantized training vs FP32 (paper threshold: run-to-run variance)",
        &[
            "model",
            "topology",
            "FP32 NE",
            "MX9 dNE",
            "mixed-prec dNE",
            "FP8 dNE",
            "FP32 AUC",
        ],
        &rows,
    );
    println!("\nShape check: MX9 and mixed-precision deltas should sit within the");
    println!("run-to-run spread printed above, across all three topologies.");
    write_csv(
        "table6_recsys",
        &[
            "model", "topology", "fp32_ne", "mx9_ne", "mixed_ne", "fp8_ne",
        ],
        &csv,
    );
}
