//! # mx-bench — experiment harness for the MX paper reproduction
//!
//! One binary per table and figure of the paper (run with
//! `cargo run --release -p mx-bench --bin <name>`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_scaling` | Fig. 1 — INT scaling strategies on the worked example |
//! | `fig2_two_level` | Fig. 2 — two-level scaling worked example |
//! | `fig3_int_vs_bfp` | Fig. 3 — coarse SW INT vs fine HW BFP |
//! | `table1_taxonomy` | Table I — two-level classification of formats |
//! | `fig6_pipeline` | Fig. 6 — bit-accurate dot-product pipeline demo |
//! | `fig7_pareto` | Fig. 7 — 800+ config sweep + Pareto frontier |
//! | `table2_knee` | Table II selection — knee analysis of d2/k2 |
//! | `theorem1_bound` | Eq. 4 — bound vs measured QSNR |
//! | `fig8_compute_flow` | Fig. 8 — quantized training compute flow trace |
//! | `table3_model_suite` | Table III — training + inference across families |
//! | `table4_fewshot` | Table IV — zero/few-shot direct-cast grid |
//! | `table5_bert_qa` | Table V — BERT QA direct cast |
//! | `table6_recsys` | Table VI — recommendation NE deltas |
//! | `table7_generative` | Table VII — generative training FP32 vs MX9 |
//! | `fig9_training_cost` | Fig. 9 — LM loss vs normalized training cost |
//!
//! Each binary prints a paper-style table and writes a CSV under
//! `results/`. Criterion performance benches live in `benches/`.

#![warn(missing_docs)]

use std::fs;
use std::path::Path;

/// Prints a fixed-width table with a title, separator rules, and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("\n== {title} ==");
    println!("{rule}");
    let head: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    println!("{}", head.join("|"));
    println!("{rule}");
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        println!("{}", line.join("|"));
    }
    println!("{rule}");
}

/// Writes rows as CSV under `results/<name>.csv` (creating the directory).
///
/// # Panics
///
/// Panics if the filesystem refuses the write — experiment outputs are not
/// optional.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, body).expect("write results csv");
    println!("[wrote {}]", path.display());
}

/// Returns true when the `MX_FULL` environment variable asks for
/// publication-scale settings (slower, closer to the paper's sample sizes).
pub fn full_scale() -> bool {
    mx_core::knobs::raw("MX_FULL").is_some_and(|v| v == "1")
}

/// Worker-thread budget for the parallel bench cases: the
/// `MX_BENCH_THREADS` environment knob, falling back to `default` when the
/// variable is unset or unparsable. `0` means "all available cores" —
/// pass it explicitly (`MX_BENCH_THREADS=0`) to restore that behavior when
/// a bench's default differs. The build container is 1-core, so the
/// committed `results/` numbers use the serial defaults; rerun the
/// parallel-scaling suites with this knob on a multi-core box (see the
/// notes in `results/*.md`).
pub fn bench_threads(default: usize) -> usize {
    mx_core::knobs::raw("MX_BENCH_THREADS")
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Formats an `f64` with the given precision, using `-` for NaN.
pub fn fmt(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "-".into()
    } else {
        format!("{v:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_handles_nan() {
        assert_eq!(fmt(f64::NAN, 2), "-");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "long header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
