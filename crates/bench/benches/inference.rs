//! `inference_steady_state` — the acceptance benchmark for the
//! prepack/execute split: repeated forward passes at a GPT-ish layer shape
//! (32 tokens × 512 features into a 4× FFN expansion, MX6 weights and
//! activations), comparing
//!
//! - `per_call_packing` — the PR 2 behavior: every call re-lowers the
//!   static weight matrix to shift-aligned codes (`quantized_gemm`);
//! - `prepacked_weights` — the weight plane is packed once and only the
//!   activations are lowered per call (`quantized_gemm_prepacked`) — the
//!   steady state `mx-nn`'s generation-keyed weight cache reaches after
//!   the first forward pass;
//! - `prepacked_scratch` — additionally reuses a caller-provided
//!   `PackScratch` for the activation plane
//!   (`quantized_gemm_prepacked_scratch`), eliminating the last per-call
//!   allocation — the steady state `mx-nn` reaches through its
//!   thread-local scratch;
//! - `weight_pack_only` — the packing cost itself, i.e. what each
//!   `per_call_packing` iteration wastes;
//! - `linear_layer_cached` — the same product through `mx_nn::Linear`
//!   with a warm cache, confirming the plumbing adds nothing material.
//!
//! The `inference_small_m_*` groups sweep the serving-shaped row counts
//! M ∈ {1, 4, 8, 32} against the same warm weight plane, comparing the
//! **fused** pack-on-the-fly path (`quantized_gemm_fused` — what the
//! automatic dispatch picks at these shapes), the **two-pass**
//! prepacked-scratch path (`quantized_gemm_twopass_scratch` — the pre-fuse
//! behavior), and the unquantized FP32 `fgemm` kernel as the floor the
//! fused path is closing on.
//!
//! All cases run serial (`threads = 1`; override with `MX_BENCH_THREADS`):
//! the interesting quantity is the per-call activation-lowering work, not
//! core scaling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_bench::bench_threads;
use mx_core::bdr::BdrFormat;
use mx_core::fgemm;
use mx_core::gemm::{
    quantized_gemm, quantized_gemm_fused, quantized_gemm_prepacked,
    quantized_gemm_prepacked_scratch, quantized_gemm_twopass_scratch, PackScratch, PackedOperand,
};
use mx_nn::format::TensorFormat;
use mx_nn::layers::{Layer, Linear};
use mx_nn::qflow::QuantConfig;
use mx_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Tokens per step (batch × sequence), model width, FFN width.
const M: usize = 32;
const K: usize = 512;
const N: usize = 2048;

fn test_matrix(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn inference_steady_state(c: &mut Criterion) {
    let fmt = BdrFormat::MX6;
    let threads = bench_threads(1);
    eprintln!(
        "inference benches: kernel backend = {}",
        mx_core::gemm::kernel_backend_name()
    );
    let a = test_matrix(M * K, 1);
    let w = test_matrix(K * N, 2);
    let mut group = c.benchmark_group("inference_steady_state");
    group.sample_size(10);
    // One multiply-accumulate per element of the M×N×K iteration space.
    group.throughput(Throughput::Elements((M * N * K) as u64));
    group.bench_function("per_call_packing", |bench| {
        bench.iter(|| black_box(quantized_gemm(&a, &w, M, K, N, fmt, fmt, threads).unwrap()))
    });
    group.bench_function("prepacked_weights", |bench| {
        let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
        bench.iter(|| black_box(quantized_gemm_prepacked(&a, M, fmt, &pw, threads).unwrap()))
    });
    group.bench_function("prepacked_scratch", |bench| {
        let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
        let mut scratch = PackScratch::new();
        bench.iter(|| {
            black_box(
                quantized_gemm_prepacked_scratch(&a, M, fmt, &pw, threads, &mut scratch).unwrap(),
            )
        })
    });
    group.bench_function("weight_pack_only", |bench| {
        bench.iter(|| black_box(PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap()))
    });
    group.bench_function("linear_layer_cached", |bench| {
        let mut l = Linear::new(
            &mut StdRng::seed_from_u64(7),
            K,
            N,
            false,
            QuantConfig::uniform(TensorFormat::Bdr(fmt)),
        );
        l.w.value = Tensor::from_vec(w.clone(), &[K, N]);
        let x = Tensor::from_vec(a.clone(), &[M, K]);
        let _ = l.forward(&x, false); // warm the generation-keyed cache
        bench.iter(|| black_box(l.forward(&x, false)))
    });
    group.finish();
}

/// Serving-shaped row counts: fused pack-on-the-fly vs the two-pass
/// prepacked-scratch path vs the FP32 `fgemm` floor, one group per M so
/// each reports its own throughput.
fn inference_small_m(c: &mut Criterion) {
    let fmt = BdrFormat::MX6;
    let threads = bench_threads(1);
    let w = test_matrix(K * N, 2);
    let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
    for m in [1usize, 4, 8, 32] {
        let a = test_matrix(m * K, 3 + m);
        let mut group = c.benchmark_group(format!("inference_small_m_{m}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((m * N * K) as u64));
        group.bench_function("fused", |bench| {
            let mut scratch = PackScratch::new();
            bench.iter(|| {
                black_box(quantized_gemm_fused(&a, m, fmt, &pw, threads, &mut scratch).unwrap())
            })
        });
        group.bench_function("twopass_scratch", |bench| {
            let mut scratch = PackScratch::new();
            bench.iter(|| {
                black_box(
                    quantized_gemm_twopass_scratch(&a, m, fmt, &pw, threads, &mut scratch).unwrap(),
                )
            })
        });
        group.bench_function("fgemm_f32", |bench| {
            bench.iter(|| black_box(fgemm::matmul(&a, &w, m, K, N, threads)))
        });
        group.finish();
    }
}

criterion_group!(benches, inference_steady_state, inference_small_m);
criterion_main!(benches);
