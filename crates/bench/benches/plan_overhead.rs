//! `plan_overhead` — the acceptance benchmark for compiled execution
//! plans: the same forward, dynamic layer-walk vs `CompiledPlan::execute`
//! over a warm arena, plus the one-time plan-compile cost the cache
//! amortizes.
//!
//! - `plan_dense_m{1,32}/dynamic` — `DenseGemm::forward_batch`, i.e. the
//!   per-call qflow path: format gating, generation-keyed plane-cache
//!   lookups, activation staging allocation;
//! - `plan_dense_m{1,32}/planned` — the same product through a compiled
//!   plan: the weight plane is pinned on the plan, the gate ran at plan
//!   time, and scratch comes from the caller's arena — steady state does
//!   zero planning/gating/allocation beyond the arena;
//! - `plan_gpt/{dynamic,planned}` — the end-to-end gap on a full
//!   transformer forward (embed → blocks → head), where per-layer
//!   bookkeeping amortizes over much larger GEMMs;
//! - `plan_gpt/compile` — building the plan itself (lowering, plane
//!   pinning, liveness layout): the one-time cost a cache hit skips.
//!
//! Both paths read the same process-wide thread default internally, so the
//! comparison is apples to apples at any core count; the results tables
//! are recorded on 1 core where the fixed per-call overhead is the largest
//! share of the small-M runtime.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_models::gpt::{Gpt, GptConfig};
use mx_models::zoo::{BatchModel, DenseGemm, ZooInput};
use mx_nn::plan::{PlanArena, PlanInput};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The serving-shaped dense layer: model width into a 4× FFN expansion
/// (matches the `inference_small_m_*` groups).
const K: usize = 512;
const N: usize = 2048;

fn mx6() -> QuantConfig {
    QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
}

fn pixels(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i + salt) as f32 * 0.137).sin())
        .collect()
}

fn plan_dense(c: &mut Criterion) {
    let cfg = mx6();
    let mut rng = StdRng::seed_from_u64(21);
    let mut layer = DenseGemm::new(&mut rng, K, N, cfg);
    for m in [1usize, 32] {
        let x = pixels(m * K, m);
        let plan = layer.compile_plan(cfg, m, K).expect("plannable");
        let mut arena = PlanArena::new();
        let _ = plan.execute(PlanInput::Pixels(&x), &mut arena); // warm the arena
        let mut group = c.benchmark_group(format!("plan_dense_m{m}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((m * N * K) as u64));
        group.bench_function("dynamic", |bench| {
            bench.iter(|| black_box(layer.forward_batch(ZooInput::Pixels(&x), m)))
        });
        group.bench_function("planned", |bench| {
            bench.iter(|| black_box(plan.execute(PlanInput::Pixels(&x), &mut arena).unwrap()))
        });
        group.finish();
    }
}

fn plan_gpt(c: &mut Criterion) {
    let cfg = mx6();
    let mut rng = StdRng::seed_from_u64(22);
    let mut gpt = Gpt::new(&mut rng, GptConfig::tiny(), cfg);
    let t = BatchModel::input_len(&gpt);
    let batch = 4;
    let toks: Vec<usize> = (0..batch * t)
        .map(|i| (i * 13 + 5) % mx_models::data::LM_VOCAB)
        .collect();
    let plan = gpt.compile_plan(cfg, batch, t).expect("plannable");
    let mut arena = PlanArena::new();
    let _ = plan.execute(PlanInput::Tokens(&toks), &mut arena);
    let mut group = c.benchmark_group("plan_gpt");
    group.sample_size(10);
    group.throughput(Throughput::Elements((batch * t) as u64));
    group.bench_function("dynamic", |bench| {
        bench.iter(|| black_box(gpt.forward_batch(ZooInput::Tokens(&toks), batch)))
    });
    group.bench_function("planned", |bench| {
        bench.iter(|| black_box(plan.execute(PlanInput::Tokens(&toks), &mut arena).unwrap()))
    });
    group.bench_function("compile", |bench| {
        bench.iter(|| black_box(gpt.compile_plan(cfg, batch, t).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, plan_dense, plan_gpt);
criterion_main!(benches);
