//! Acceptance benchmarks for the GEMM paths at 512×512×512:
//!
//! - `quantized_gemm_512` — the MX6 quantized product: the dequantize path
//!   (fake-quantize both operands, then `f32` matmul) vs the fused integer
//!   code-domain path, serial and row-parallel;
//! - `matmul_512` — the unquantized FP32 baseline: the seed's naive triple
//!   loop vs the blocked, vectorized `mx_core::fgemm` kernel. Quantized-vs-
//!   FP32 speedup claims are measured against this *improved* baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_bench::bench_threads;
use mx_core::bdr::BdrFormat;
use mx_core::fgemm;
use mx_core::gemm::{quantized_gemm, quantized_gemm_prepacked, PackedOperand};
use mx_nn::format::{quantize_along, Axis, TensorFormat};
use mx_nn::tensor::Tensor;
use std::hint::black_box;

const N: usize = 512;

fn test_matrix(salt: usize) -> Vec<f32> {
    (0..N * N)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn quantized_gemm_512(c: &mut Criterion) {
    let fmt = BdrFormat::MX6;
    let a = test_matrix(1);
    let b = test_matrix(2);
    let mut group = c.benchmark_group("quantized_gemm_512");
    group.sample_size(10);
    // One multiply-accumulate per element of the M×N×K iteration space.
    group.throughput(Throughput::Elements((N * N * N) as u64));
    group.bench_function("dequantize_f32", |bench| {
        let at = Tensor::from_vec(a.clone(), &[N, N]);
        let bt = Tensor::from_vec(b.clone(), &[N, N]);
        bench.iter(|| {
            let aq = quantize_along(&at, TensorFormat::Bdr(fmt), Axis::Row);
            let bq = quantize_along(&bt, TensorFormat::Bdr(fmt), Axis::Col);
            black_box(aq.matmul(&bq))
        })
    });
    group.bench_function("code_domain", |bench| {
        bench.iter(|| black_box(quantized_gemm(&a, &b, N, N, N, fmt, fmt, 1).unwrap()))
    });
    group.bench_function("code_domain_parallel", |bench| {
        // Worker budget from MX_BENCH_THREADS (default: all cores).
        let threads = bench_threads(0);
        bench.iter(|| black_box(quantized_gemm(&a, &b, N, N, N, fmt, fmt, threads).unwrap()))
    });
    group.bench_function("code_domain_prepacked", |bench| {
        let pb = PackedOperand::pack_cols(&b, N, N, fmt, fmt).unwrap();
        bench.iter(|| black_box(quantized_gemm_prepacked(&a, N, fmt, &pb, 1).unwrap()))
    });
    group.finish();
}

fn matmul_512(c: &mut Criterion) {
    // The canonical copy of the seed triple loop (`fgemm::naive_matmul`)
    // is the baseline the blocked kernel is measured against, and the one
    // `tests/gemm_consistency.rs` proves it bit-identical to.
    use mx_core::fgemm::naive_matmul;
    let a = test_matrix(3);
    let b = test_matrix(4);
    let mut group = c.benchmark_group("matmul_512");
    group.sample_size(10);
    group.throughput(Throughput::Elements((N * N * N) as u64));
    group.bench_function("naive_triple_loop", |bench| {
        bench.iter(|| black_box(naive_matmul(&a, &b, N, N, N)))
    });
    group.bench_function("blocked", |bench| {
        bench.iter(|| black_box(fgemm::matmul(&a, &b, N, N, N, 1)))
    });
    group.bench_function("blocked_parallel", |bench| {
        // Worker budget from MX_BENCH_THREADS (default: all cores).
        let threads = bench_threads(0);
        bench.iter(|| black_box(fgemm::matmul(&a, &b, N, N, N, threads)))
    });
    group.finish();
}

criterion_group!(benches, quantized_gemm_512, matmul_512);
criterion_main!(benches);
