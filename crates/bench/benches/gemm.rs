//! Acceptance benchmark for the integer code-domain GEMM: a 512×512×512
//! MX6 quantized matrix product, the dequantize path (fake-quantize both
//! operands, then naive `f32` matmul — the seed's `quantized_matmul`) vs
//! the fused integer path, serial and row-parallel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_core::bdr::BdrFormat;
use mx_core::gemm::quantized_gemm;
use mx_nn::format::{quantize_along, Axis, TensorFormat};
use mx_nn::tensor::Tensor;
use std::hint::black_box;

const N: usize = 512;

fn test_matrix(salt: usize) -> Vec<f32> {
    (0..N * N)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn quantized_gemm_512(c: &mut Criterion) {
    let fmt = BdrFormat::MX6;
    let a = test_matrix(1);
    let b = test_matrix(2);
    let mut group = c.benchmark_group("quantized_gemm_512");
    group.sample_size(10);
    // One multiply-accumulate per element of the M×N×K iteration space.
    group.throughput(Throughput::Elements((N * N * N) as u64));
    group.bench_function("dequantize_f32", |bench| {
        let at = Tensor::from_vec(a.clone(), &[N, N]);
        let bt = Tensor::from_vec(b.clone(), &[N, N]);
        bench.iter(|| {
            let aq = quantize_along(&at, TensorFormat::Bdr(fmt), Axis::Row);
            let bq = quantize_along(&bt, TensorFormat::Bdr(fmt), Axis::Col);
            black_box(aq.matmul(&bq))
        })
    });
    group.bench_function("code_domain", |bench| {
        bench.iter(|| black_box(quantized_gemm(&a, &b, N, N, N, fmt, fmt, 1).unwrap()))
    });
    group.bench_function("code_domain_parallel", |bench| {
        bench.iter(|| black_box(quantized_gemm(&a, &b, N, N, N, fmt, fmt, 0).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, quantized_gemm_512);
criterion_main!(benches);
