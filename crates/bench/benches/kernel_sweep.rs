//! `kernel_sweep` — the acceptance benchmark for the multi-backend kernel
//! dispatch layer and the generation-2/3 SIMD kernels: one group per
//! serving-relevant M ∈ {1, 4, 8, 16, 32}, sweeping
//!
//! - `scalar` / `sse2` / `avx2` / `avx512` — each backend forced via
//!   `force_kernel_backend` (the B plane is packed *after* forcing, so
//!   each variant also measures its own plane layout — vector-major for
//!   scalar/SSE2, 8-column panel-major for AVX2, 4-column chunk-paired
//!   panel-major for AVX-512);
//! - `avx512_bw` — the AVX-512 kernel with VNNI forced off
//!   (`force_vnni`), isolating the `vpdpwssd` win over the
//!   `vpmaddwd`+`vpaddd` fallback;
//! - `avx2_nodefer` / `avx512_nodefer` — deferred scale-out forced off,
//!   isolating the deferral win from the wide-tile win per generation;
//! - `fgemm_f32` — the unquantized FP32 kernel, the floor the fused path
//!   must beat at **every** M.
//!
//! All cases run the fused activation path against a warm weight plane at
//! the same GPT-ish layer shape as `inference_steady_state` (K = 512 into
//! an N = 2048 FFN expansion, MX6 × MX6), serial by default
//! (`MX_BENCH_THREADS` overrides). A backend the CPU cannot run is
//! skipped (reported once at startup), keeping the sweep runnable
//! everywhere.
//!
//! Results are recorded in `results/kernel_sweep.md`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_bench::bench_threads;
use mx_core::bdr::BdrFormat;
use mx_core::fgemm;
use mx_core::gemm::{
    force_deferred_scale_out, force_kernel_backend, force_vnni, kernel_backend_name,
    quantized_gemm_fused, KernelBackend, PackScratch, PackedOperand,
};
use std::hint::black_box;

/// Model width and FFN expansion width (the `inference_steady_state` shape).
const K: usize = 512;
const N: usize = 2048;

fn test_matrix(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn kernel_sweep(c: &mut Criterion) {
    let fmt = BdrFormat::MX6;
    let threads = bench_threads(1);
    eprintln!(
        "kernel_sweep: auto-selected backend = {}",
        kernel_backend_name()
    );
    let w = test_matrix(K * N, 2);
    for m in [1usize, 4, 8, 16, 32] {
        let a = test_matrix(m * K, 3 + m);
        let mut group = c.benchmark_group(format!("kernel_sweep_m{m}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((m * N * K) as u64));
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
        ] {
            if force_kernel_backend(Some(backend)).is_err() {
                eprintln!(
                    "kernel_sweep: skipping {} (unavailable on this CPU)",
                    backend.name()
                );
                continue;
            }
            group.bench_function(backend.name(), |bench| {
                force_kernel_backend(Some(backend)).unwrap();
                let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
                let mut scratch = PackScratch::new();
                bench.iter(|| {
                    black_box(quantized_gemm_fused(&a, m, fmt, &pw, threads, &mut scratch).unwrap())
                });
                force_kernel_backend(None).unwrap();
            });
        }
        // Deferral-off and VNNI-off variants isolate each speedup layer;
        // a variant whose backend this CPU lacks is skipped above already,
        // so only availability needs re-checking here.
        if force_kernel_backend(Some(KernelBackend::Avx512)).is_ok() {
            group.bench_function("avx512_bw", |bench| {
                force_kernel_backend(Some(KernelBackend::Avx512)).unwrap();
                force_vnni(Some(false));
                let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
                let mut scratch = PackScratch::new();
                bench.iter(|| {
                    black_box(quantized_gemm_fused(&a, m, fmt, &pw, threads, &mut scratch).unwrap())
                });
                force_vnni(None);
                force_kernel_backend(None).unwrap();
            });
            group.bench_function("avx512_nodefer", |bench| {
                force_kernel_backend(Some(KernelBackend::Avx512)).unwrap();
                force_deferred_scale_out(Some(false));
                let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
                let mut scratch = PackScratch::new();
                bench.iter(|| {
                    black_box(quantized_gemm_fused(&a, m, fmt, &pw, threads, &mut scratch).unwrap())
                });
                force_deferred_scale_out(None);
                force_kernel_backend(None).unwrap();
            });
        }
        if force_kernel_backend(Some(KernelBackend::Avx2)).is_ok() {
            group.bench_function("avx2_nodefer", |bench| {
                force_kernel_backend(Some(KernelBackend::Avx2)).unwrap();
                force_deferred_scale_out(Some(false));
                let pw = PackedOperand::pack_cols(&w, K, N, fmt, fmt).unwrap();
                let mut scratch = PackScratch::new();
                bench.iter(|| {
                    black_box(quantized_gemm_fused(&a, m, fmt, &pw, threads, &mut scratch).unwrap())
                });
                force_deferred_scale_out(None);
                force_kernel_backend(None).unwrap();
            });
        }
        force_kernel_backend(None).unwrap();
        group.bench_function("fgemm_f32", |bench| {
            bench.iter(|| black_box(fgemm::matmul(&a, &w, m, K, N, threads)))
        });
        group.finish();
    }
}

criterion_group!(benches, kernel_sweep);
criterion_main!(benches);
