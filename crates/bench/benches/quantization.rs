//! Criterion performance benches: quantization throughput per format, the
//! bit-accurate dot-product engine, the QSNR harness, one sweep step, and
//! a quantized training step — the hot paths of every experiment binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mx_core::bdr::{BdrFormat, BdrQuantizer};
use mx_core::engine::QuantEngine;
use mx_core::fp_scaled::FpScaledQuantizer;
use mx_core::int_quant::IntQuantizer;
use mx_core::mx::MxTensor;
use mx_core::qsnr::{measure_qsnr, Distribution, QsnrConfig};
use mx_core::scalar::ScalarFormat;
use mx_core::scaling::ScaleStrategy;
use mx_core::vsq::VsqQuantizer;
use mx_core::VectorQuantizer;
use mx_hw::cost::{CostModel, FormatConfig};
use mx_hw::pipeline::{DotProductPipeline, PipelineConfig};
use std::hint::black_box;

fn test_vector(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761usize) % 10_007) as f32 / 10_007.0 - 0.5)
        .collect()
}

fn quant_throughput(c: &mut Criterion) {
    let x = test_vector(4096);
    let mut group = c.benchmark_group("quantize_dequantize_4k");
    group.throughput(Throughput::Elements(4096));
    let mut cases: Vec<(&str, Box<dyn VectorQuantizer>)> = vec![
        ("MX9", Box::new(BdrQuantizer::new(BdrFormat::MX9))),
        ("MX6", Box::new(BdrQuantizer::new(BdrFormat::MX6))),
        ("MX4", Box::new(BdrQuantizer::new(BdrFormat::MX4))),
        ("MSFP12", Box::new(BdrQuantizer::new(BdrFormat::MSFP12))),
        (
            "FP8-E4M3",
            Box::new(FpScaledQuantizer::new(
                ScalarFormat::E4M3,
                ScaleStrategy::Amax,
            )),
        ),
        (
            "INT8",
            Box::new(IntQuantizer::new(8, 1024, ScaleStrategy::Amax)),
        ),
        (
            "VSQ4",
            Box::new(VsqQuantizer::new(4, 4, 1024, ScaleStrategy::Amax)),
        ),
    ];
    for (name, q) in cases.iter_mut() {
        group.bench_function(*name, |b| b.iter(|| black_box(q.quantize_dequantize(&x))));
    }
    group.finish();
}

fn packed_encode(c: &mut Criterion) {
    let x = test_vector(4096);
    let mut group = c.benchmark_group("mx_packed_encode_4k");
    group.throughput(Throughput::Elements(4096));
    for fmt in [BdrFormat::MX4, BdrFormat::MX9] {
        group.bench_with_input(BenchmarkId::from_parameter(fmt), &fmt, |b, fmt| {
            b.iter(|| black_box(MxTensor::encode(*fmt, &x)))
        });
    }
    group.finish();
}

/// The seed's column-quantization path — transpose, quantize each row,
/// transpose back — kept verbatim as the naive baseline the strided engine
/// kernel must beat.
fn naive_transpose_col_quantize(
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: BdrFormat,
) -> Vec<f32> {
    let mut tt = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            tt[j * rows + i] = data[i * cols + j];
        }
    }
    for col in tt.chunks_mut(rows) {
        fmt.quantize_dequantize_in_place(col);
    }
    let mut out = vec![0.0f32; rows * cols];
    for j in 0..cols {
        for i in 0..rows {
            out[i * cols + j] = tt[j * rows + i];
        }
    }
    out
}

/// Acceptance benchmark for the engine refactor: column-axis quantization
/// of a 1024×1024 tensor, seed's transpose round trip vs the strided
/// kernel, serial and parallel.
fn engine_vs_naive(c: &mut Criterion) {
    let (rows, cols) = (1024usize, 1024usize);
    let x = test_vector(rows * cols);
    let fmt = BdrFormat::MX9;
    let mut group = c.benchmark_group("col_quantize_1024x1024");
    group.throughput(Throughput::Elements((rows * cols) as u64));
    group.bench_function("seed_transpose", |b| {
        b.iter(|| black_box(naive_transpose_col_quantize(&x, rows, cols, fmt)))
    });
    group.bench_function("engine_strided", |b| {
        let engine = QuantEngine::new(fmt);
        b.iter(|| {
            let mut d = x.clone();
            engine.quantize_dequantize_cols(&mut d, cols);
            black_box(d)
        })
    });
    group.bench_function("engine_strided_parallel", |b| {
        let engine = QuantEngine::auto(fmt);
        b.iter(|| {
            let mut d = x.clone();
            engine.quantize_dequantize_cols(&mut d, cols);
            black_box(d)
        })
    });
    group.finish();
}

/// Multi-core scaling of the engine's contiguous value path on a 1M-element
/// tensor. `MX_BENCH_THREADS` appends an extra point to the sweep without
/// editing the list; `0` (also the unset default) means the box's actual
/// core count, matching the knob's contract everywhere else.
fn parallel_scaling(c: &mut Criterion) {
    let x = test_vector(1 << 20);
    let fmt = BdrFormat::MX6;
    let mut group = c.benchmark_group("engine_parallel_scaling_1m");
    group.throughput(Throughput::Elements(1 << 20));
    let mut sweep = vec![1usize, 2, 4, 8];
    let extra = match mx_bench::bench_threads(0) {
        0 => mx_core::parallel::default_threads(),
        t => t,
    };
    if !sweep.contains(&extra) {
        sweep.push(extra);
    }
    for threads in sweep {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let engine = QuantEngine::new(fmt).with_threads(t);
            b.iter(|| black_box(engine.quantize_dequantize(&x)))
        });
    }
    group.finish();
}

fn dot_product_engine(c: &mut Criterion) {
    let a = test_vector(1024);
    let bb = test_vector(1024);
    let mut group = c.benchmark_group("pipeline_dot_1k");
    group.throughput(Throughput::Elements(1024));
    for (name, cfg) in [
        ("MX9", PipelineConfig::Bdr(BdrFormat::MX9)),
        ("MX4", PipelineConfig::Bdr(BdrFormat::MX4)),
        ("FP8-E4M3", PipelineConfig::Scalar(ScalarFormat::E4M3)),
    ] {
        let engine = DotProductPipeline::new(cfg, 64);
        group.bench_function(name, |b| b.iter(|| black_box(engine.dot(&a, &bb))));
    }
    group.finish();
}

fn qsnr_harness(c: &mut Criterion) {
    let cfg = QsnrConfig {
        vectors: 16,
        vector_len: 1024,
        seed: 3,
    };
    c.bench_function("qsnr_mx6_16x1k", |b| {
        b.iter(|| {
            let mut q = BdrQuantizer::new(BdrFormat::MX6);
            black_box(measure_qsnr(
                &mut q,
                Distribution::NormalVariableVariance,
                cfg,
            ))
        })
    });
}

fn cost_model(c: &mut Criterion) {
    let model = CostModel::new();
    c.bench_function("cost_model_mx9", |b| {
        b.iter(|| black_box(model.evaluate(&FormatConfig::Bdr(BdrFormat::MX9))))
    });
}

fn train_step(c: &mut Criterion) {
    use mx_models::data::{lm_batch, markov_corpus};
    use mx_models::gpt::{Gpt, GptConfig};
    use mx_nn::optim::Adam;
    use mx_nn::qflow::QuantConfig;
    use mx_nn::TensorFormat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let corpus = markov_corpus(1, 5000, 0.4);
    let mut group = c.benchmark_group("gpt_tiny_train_step");
    group.sample_size(10);
    for (name, cfg) in [
        ("fp32", QuantConfig::fp32()),
        ("mx9", QuantConfig::uniform(TensorFormat::MX9)),
        ("mx6", QuantConfig::uniform(TensorFormat::MX6)),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut model = Gpt::new(&mut rng, GptConfig::tiny(), cfg);
            let mut opt = Adam::new(1e-3);
            let mut data_rng = StdRng::seed_from_u64(8);
            b.iter(|| {
                let (x, y) = lm_batch(&mut data_rng, &corpus, 2, 16);
                black_box(model.train_step(&x, &y, 2, &mut opt))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    quant_throughput,
    packed_encode,
    engine_vs_naive,
    parallel_scaling,
    dot_product_engine,
    qsnr_harness,
    cost_model,
    train_step
);
criterion_main!(benches);
