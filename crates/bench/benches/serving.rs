//! `serving_throughput` — the acceptance benchmark for the batching
//! server: the same 32 requests (one 512-feature row each, MX6 weights and
//! activations, one 512 → 2048 dense layer = one GPT-ish FFN shard) served
//! four ways:
//!
//! - `direct_one_at_a_time` — 32 separate `forward_batch(1)` calls on the
//!   bare model (warm weight plane): what an unbatched server's worker
//!   does;
//! - `direct_batched_32` — one `forward_batch(32)` call: the coalesced
//!   batch GEMM the dispatcher builds, with B-code traffic and per-call
//!   overhead amortized over all 32 rows;
//! - `server_max_batch_1` — the full server loop (queue, dispatcher,
//!   worker, response channels) forced to one-at-a-time execution;
//! - `server_max_batch_32` — the full server loop with coalescing enabled
//!   (requests are submitted as a burst, so the dispatcher can batch).
//!
//! Every variant computes bit-identical responses (`serve_end_to_end`
//! proves that); the quantity measured here is throughput. All GEMMs run
//! serial (`threads` is whatever `mx-nn` picks on one core): the
//! interesting ratio is batched vs unbatched, not core scaling. On a
//! multi-core box, set `MX_BENCH_THREADS` to give the server that many
//! worker threads (default 1) and rerun to measure worker scaling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mx_models::zoo::{BatchModel, DenseGemm, ZooInput};
use mx_nn::qflow::QuantConfig;
use mx_nn::TensorFormat;
use mx_serve::{Pending, Request, RequestInput, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Requests per burst (the batch the dispatcher can coalesce).
const BATCH: usize = 32;
/// Features per request / model width.
const K: usize = 512;
/// FFN width.
const N: usize = 2048;

fn mx6() -> QuantConfig {
    QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
}

fn model() -> DenseGemm {
    let mut rng = StdRng::seed_from_u64(5);
    DenseGemm::new(&mut rng, K, N, mx6())
}

fn request_row(salt: usize) -> Vec<f32> {
    (0..K)
        .map(|i| {
            ((i.wrapping_mul(2654435761).wrapping_add(salt * 911)) % 10_007) as f32 / 10_007.0 - 0.5
        })
        .collect()
}

fn serving_throughput(c: &mut Criterion) {
    let rows: Vec<Vec<f32>> = (0..BATCH).map(request_row).collect();
    let flat: Vec<f32> = rows.iter().flatten().copied().collect();

    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    // One multiply-accumulate per element of the full burst's iteration
    // space, so every variant reports comparable request throughput.
    group.throughput(Throughput::Elements((BATCH * K * N) as u64));

    group.bench_function("direct_one_at_a_time", |bench| {
        let mut m = model();
        let _ = m.forward_batch(ZooInput::Pixels(&rows[0]), 1); // warm plane
        bench.iter(|| {
            for row in &rows {
                black_box(m.forward_batch(ZooInput::Pixels(row), 1));
            }
        })
    });

    group.bench_function("direct_batched_32", |bench| {
        let mut m = model();
        let _ = m.forward_batch(ZooInput::Pixels(&rows[0]), 1); // warm plane
        bench.iter(|| black_box(m.forward_batch(ZooInput::Pixels(&flat), BATCH)))
    });

    // MX_BENCH_THREADS picks the worker count (default 1; 0 = all cores,
    // matching the knob's contract everywhere else).
    let workers = match mx_bench::bench_threads(1) {
        0 => mx_core::parallel::default_threads(),
        w => w,
    };
    for max_batch in [1, BATCH] {
        let mut server = Server::new(
            ServerConfig::default()
                .max_batch(max_batch)
                .workers(workers),
        );
        server.register("ffn", Box::new(model()));
        let handle = server.start().expect("valid config");
        // Warm the weight plane before timing.
        let _ = handle
            .infer(Request::new("ffn", RequestInput::Pixels(rows[0].clone())).quant(mx6()))
            .unwrap();
        group.bench_function(format!("server_max_batch_{max_batch}"), |bench| {
            bench.iter(|| {
                let pending: Vec<Pending> = rows
                    .iter()
                    .map(|row| {
                        handle
                            .submit(
                                Request::new("ffn", RequestInput::Pixels(row.clone())).quant(mx6()),
                            )
                            .unwrap()
                    })
                    .collect();
                for p in pending {
                    black_box(p.wait().unwrap());
                }
            })
        });
        let stats = handle.stats();
        println!(
            "  server_max_batch_{max_batch}: {} requests / {} batches (mean batch {:.1}), \
             p50 {} µs, p99 {} µs, packs avoided {}",
            stats.completed,
            stats.batches,
            stats.mean_batch_size(),
            stats.p50_latency_us,
            stats.p99_latency_us,
            stats.packs_avoided,
        );
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(benches, serving_throughput);
criterion_main!(benches);
