//! The five rule families `mx-audit` enforces, each a pure function from a
//! [`Workspace`] to findings.
//!
//! | id | contract |
//! |---|---|
//! | `unsafe-safety` | every `unsafe` block/item carries a `SAFETY` justification |
//! | `target-feature` | `#[target_feature]` fns are unsafe, non-`pub`, and runtime-detected |
//! | `ci-wiring` | every test suite and bench harness is named in the CI workflow |
//! | `env-knobs` | `MX_*` env reads ⊆ knob registry ⊆ README table, and back |
//! | `serve-panic` | no panic paths in `crates/serve` request handling |
//!
//! A finding on a specific line can be suppressed with a comment
//! `audit:allow(<rule-id>): <reason>` on the same line or in the comment
//! run directly above it — the suppression is itself greppable, so the
//! escape hatch leaves a paper trail.

use crate::lexer::{find_word, LexedFile};
use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;

/// One source file of the workspace under audit.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// Channel-split source.
    pub lex: LexedFile,
}

/// Everything the rules look at, loaded once.
pub struct Workspace {
    /// Every non-vendored `.rs` file.
    pub files: Vec<SourceFile>,
    /// `.github/workflows/ci.yml`, verbatim.
    pub ci_yml: String,
    /// `README.md`, verbatim.
    pub readme: String,
    /// Stems of `tests/*.rs` integration suites.
    pub test_stems: Vec<String>,
    /// Stems of `crates/bench/benches/*.rs` harnesses.
    pub bench_stems: Vec<String>,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family id (e.g. `unsafe-safety`).
    pub rule: &'static str,
    /// File the finding is in, relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Human-readable defect statement.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every rule over the workspace, findings in file order.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_unsafe_safety(ws, &mut findings);
    rule_target_feature(ws, &mut findings);
    rule_ci_wiring(ws, &mut findings);
    rule_env_knobs(ws, &mut findings);
    rule_serve_panic(ws, &mut findings);
    findings
}

impl SourceFile {
    /// True when line `idx` (0-based) carries an `audit:allow(rule)` tag on
    /// the same line or in the contiguous comment run directly above.
    fn allowed(&self, rule: &str, idx: usize) -> bool {
        let tag = format!("audit:allow({rule})");
        let has = |i: usize| self.lex.comments.get(i).is_some_and(|c| c.contains(&tag));
        if has(idx) {
            return true;
        }
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let code_empty = self.lex.code.get(i).is_none_or(|c| c.trim().is_empty());
            let has_comment = self.lex.comments.get(i).is_some_and(|c| !c.is_empty());
            if !(code_empty && has_comment) {
                return false;
            }
            if has(i) {
                return true;
            }
        }
        false
    }

    /// 0-based line mask of `#[cfg(test)]`-gated module bodies, so rules
    /// about production paths can skip test code.
    fn test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.lex.code.len()];
        let mut i = 0;
        while i < self.lex.code.len() {
            if !self.lex.code[i].contains("#[cfg(test)]") {
                i += 1;
                continue;
            }
            // Find the gated item's opening brace, then match it.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < self.lex.code.len() {
                for ch in self.lex.code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                mask[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        }
        mask
    }

    /// First non-whitespace token of the code channel at/after
    /// `(idx, col)`, scanning forward across lines.
    fn next_code_token(&self, idx: usize, col: usize) -> Option<String> {
        let mut line = idx;
        let mut start = col;
        while line < self.lex.code.len() {
            let code = &self.lex.code[line];
            let rest: String = code.chars().skip(start).collect();
            let trimmed = rest.trim_start();
            if !trimmed.is_empty() {
                let mut tok = String::new();
                for c in trimmed.chars() {
                    let ident = c.is_ascii_alphanumeric() || c == '_';
                    if tok.is_empty()
                        || (ident && tok.chars().all(|t| t.is_ascii_alphanumeric() || t == '_'))
                    {
                        tok.push(c);
                        if !ident {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                return Some(tok);
            }
            line += 1;
            start = 0;
        }
        None
    }

    /// Comment text of the contiguous comment/attribute run directly above
    /// line `idx` plus line `idx` itself — where `SAFETY` justifications
    /// and `# Safety` doc sections live.
    fn leading_comment_text(&self, idx: usize) -> String {
        let mut text = self.lex.comments.get(idx).cloned().unwrap_or_default();
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let code = self.lex.code.get(i).map(|c| c.trim()).unwrap_or("");
            let comment = self.lex.comments.get(i).map(String::as_str).unwrap_or("");
            let is_comment_line = code.is_empty() && !comment.is_empty();
            let is_attr_line = code.starts_with("#[") || code.starts_with("#!");
            if !(is_comment_line || is_attr_line) {
                break;
            }
            text.push('\n');
            text.push_str(comment);
        }
        text
    }

    /// The crate this file belongs to: its first two path components
    /// (`crates/core`), or the first for root-level files.
    fn crate_key(&self) -> String {
        let parts: Vec<&str> = self.path.split('/').collect();
        match parts.as_slice() {
            [a, b, ..] => format!("{a}/{b}"),
            [a] => (*a).to_string(),
            [] => String::new(),
        }
    }
}

/// Rule `unsafe-safety`: every `unsafe {}` block needs a `SAFETY:` comment
/// on the same line or directly above; every `unsafe fn`/`unsafe impl`/
/// `unsafe trait`/`unsafe extern` needs a safety section in its docs.
fn rule_unsafe_safety(ws: &Workspace, findings: &mut Vec<Finding>) {
    const RULE: &str = "unsafe-safety";
    for f in &ws.files {
        for (idx, code) in f.lex.code.iter().enumerate() {
            for at in find_word(code, "unsafe") {
                let col = code.char_indices().take_while(|&(b, _)| b < at).count() + "unsafe".len();
                let Some(tok) = f.next_code_token(idx, col) else {
                    continue;
                };
                if tok == "{" {
                    let ctx = f.leading_comment_text(idx);
                    if !ctx.contains("SAFETY") && !f.allowed(RULE, idx) {
                        findings.push(Finding {
                            rule: RULE,
                            path: PathBuf::from(&f.path),
                            line: idx + 1,
                            message: "unsafe block without an adjacent `// SAFETY:` comment".into(),
                        });
                    }
                } else if matches!(tok.as_str(), "fn" | "impl" | "trait" | "extern") {
                    let ctx = f.leading_comment_text(idx).to_lowercase();
                    if !ctx.contains("safety") && !f.allowed(RULE, idx) {
                        findings.push(Finding {
                            rule: RULE,
                            path: PathBuf::from(&f.path),
                            line: idx + 1,
                            message: format!("unsafe {tok} without a safety contract in its docs"),
                        });
                    }
                }
            }
        }
    }
}

/// Rule `target-feature`: a `#[target_feature(enable = "X")]` fn must be
/// `unsafe`, must not be bare-`pub`, and `X` must be runtime-gated by
/// `is_x86_feature_detected!("X")` somewhere in the same crate. `sse2` is
/// exempt from detection — it is part of the x86-64 baseline ABI.
fn rule_target_feature(ws: &Workspace, findings: &mut Vec<Finding>) {
    const RULE: &str = "target-feature";
    // Crate → features runtime-detected anywhere in it.
    let mut detected: BTreeSet<(String, String)> = BTreeSet::new();
    for f in &ws.files {
        for (idx, code) in f.lex.code.iter().enumerate() {
            if !code.contains("is_x86_feature_detected") {
                continue;
            }
            for (line, s) in &f.lex.strings {
                if *line == idx + 1 {
                    detected.insert((f.crate_key(), s.clone()));
                }
            }
        }
    }
    for f in &ws.files {
        for (idx, code) in f.lex.code.iter().enumerate() {
            if !code.contains("#[target_feature(") {
                continue;
            }
            let feats: Vec<String> = f
                .lex
                .strings
                .iter()
                .filter(|(line, _)| *line == idx + 1)
                .flat_map(|(_, s)| s.split(','))
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            // The annotated fn: first following line whose code declares one.
            let Some(fn_idx) = (idx..f.lex.code.len().min(idx + 8))
                .find(|&j| !find_word(&f.lex.code[j], "fn").is_empty())
            else {
                continue;
            };
            let decl = &f.lex.code[fn_idx];
            if find_word(decl, "unsafe").is_empty() && !f.allowed(RULE, idx) {
                findings.push(Finding {
                    rule: RULE,
                    path: PathBuf::from(&f.path),
                    line: fn_idx + 1,
                    message: "#[target_feature] fn must be `unsafe fn` (callers must check \
                              CPU support first)"
                        .into(),
                });
            }
            let trimmed = decl.trim_start();
            if trimmed.starts_with("pub ") && !f.allowed(RULE, idx) {
                findings.push(Finding {
                    rule: RULE,
                    path: PathBuf::from(&f.path),
                    line: fn_idx + 1,
                    message: "#[target_feature] fn must not be `pub`: export a safe \
                              detected-dispatch wrapper instead"
                        .into(),
                });
            }
            let krate = f.crate_key();
            for feat in feats {
                if feat == "sse2" {
                    continue;
                }
                if !detected.contains(&(krate.clone(), feat.clone())) && !f.allowed(RULE, idx) {
                    findings.push(Finding {
                        rule: RULE,
                        path: PathBuf::from(&f.path),
                        line: idx + 1,
                        message: format!(
                            "feature {feat:?} is enabled here but never gated by \
                             is_x86_feature_detected!({feat:?}) in {krate}"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule `ci-wiring`: every `tests/*.rs` suite must be named with
/// `--test <stem>` in the CI workflow, and every bench harness must appear
/// in a `--bench` invocation or the bench-loop list.
fn rule_ci_wiring(ws: &Workspace, findings: &mut Vec<Finding>) {
    const RULE: &str = "ci-wiring";
    for stem in &ws.test_stems {
        if !ws.ci_yml.contains(&format!("--test {stem}")) {
            findings.push(Finding {
                rule: RULE,
                path: PathBuf::from(".github/workflows/ci.yml"),
                line: 0,
                message: format!("test suite tests/{stem}.rs is not named (`--test {stem}`) in CI"),
            });
        }
    }
    for stem in &ws.bench_stems {
        let wired = ws.ci_yml.lines().any(|l| {
            let t = l.trim();
            (t.contains("--bench") || t.starts_with("for bench in"))
                && t.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .any(|tok| tok == stem)
        });
        if !wired {
            findings.push(Finding {
                rule: RULE,
                path: PathBuf::from(".github/workflows/ci.yml"),
                line: 0,
                message: format!(
                    "bench harness crates/bench/benches/{stem}.rs is not exercised in CI"
                ),
            });
        }
    }
}

/// True when `s` is shaped like an environment-knob name: `MX_` plus a
/// non-empty `[A-Z0-9_]` tail.
fn is_knob_name(s: &str) -> bool {
    s.len() > 3
        && s.starts_with("MX_")
        && s[3..]
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// `MX_*`-shaped tokens appearing anywhere in free text (the README).
fn knob_tokens(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        if is_knob_name(raw) {
            out.insert(raw.to_string());
        }
    }
    out
}

/// Rule `env-knobs`: the registry in `crates/core/src/knobs.rs` is the
/// single source of truth for `MX_*` environment variables. Every `MX_*`
/// string literal in production code must be registered, every registered
/// knob must be documented in the README, and the README must not document
/// phantom knobs.
fn rule_env_knobs(ws: &Workspace, findings: &mut Vec<Finding>) {
    const RULE: &str = "env-knobs";
    const REGISTRY: &str = "crates/core/src/knobs.rs";
    let registry: BTreeSet<String> = ws
        .files
        .iter()
        .filter(|f| f.path.ends_with(REGISTRY) || f.path == REGISTRY)
        .flat_map(|f| f.lex.strings.iter())
        .filter(|(_, s)| is_knob_name(s))
        .map(|(_, s)| s.clone())
        .collect();
    if registry.is_empty() {
        findings.push(Finding {
            rule: RULE,
            path: PathBuf::from(REGISTRY),
            line: 0,
            message: "knob registry is missing or declares no MX_* knobs".into(),
        });
        return;
    }
    for f in &ws.files {
        if f.path == REGISTRY {
            continue;
        }
        let mask = f.test_mask();
        for (line, s) in &f.lex.strings {
            if is_knob_name(s)
                && !registry.contains(s.as_str())
                && !mask.get(line.saturating_sub(1)).copied().unwrap_or(false)
                && !f.allowed(RULE, line.saturating_sub(1))
            {
                findings.push(Finding {
                    rule: RULE,
                    path: PathBuf::from(&f.path),
                    line: *line,
                    message: format!("env knob {s:?} is not declared in mx_core::knobs::KNOBS"),
                });
            }
        }
    }
    let documented = knob_tokens(&ws.readme);
    for k in &registry {
        if !documented.contains(k) {
            findings.push(Finding {
                rule: RULE,
                path: PathBuf::from("README.md"),
                line: 0,
                message: format!("declared knob {k:?} is not documented in the README"),
            });
        }
    }
    for k in &documented {
        if !registry.contains(k) {
            findings.push(Finding {
                rule: RULE,
                path: PathBuf::from("README.md"),
                line: 0,
                message: format!(
                    "README documents {k:?}, which is not declared in mx_core::knobs::KNOBS"
                ),
            });
        }
    }
}

/// Rule `serve-panic`: production code in `crates/serve/src` must not
/// contain panic paths — `.unwrap()`, `.expect(`, panicking macros,
/// asserts, or bracket indexing — outside `#[cfg(test)]` modules and
/// explicit `audit:allow(serve-panic)` sites.
fn rule_serve_panic(ws: &Workspace, findings: &mut Vec<Finding>) {
    const RULE: &str = "serve-panic";
    const SUBSTRINGS: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &[
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ];
    for f in &ws.files {
        if !f.path.starts_with("crates/serve/src") {
            continue;
        }
        let mask = f.test_mask();
        for (idx, code) in f.lex.code.iter().enumerate() {
            if mask.get(idx).copied().unwrap_or(false) || f.allowed(RULE, idx) {
                continue;
            }
            for pat in SUBSTRINGS {
                if code.contains(pat) {
                    findings.push(Finding {
                        rule: RULE,
                        path: PathBuf::from(&f.path),
                        line: idx + 1,
                        message: format!(
                            "`{pat}` on the serve request path: return a ServeError instead"
                        ),
                    });
                }
            }
            for mac in MACROS {
                let word = &mac[..mac.len() - 1];
                if find_word(code, word)
                    .iter()
                    .any(|&at| code[at + word.len()..].starts_with('!'))
                {
                    findings.push(Finding {
                        rule: RULE,
                        path: PathBuf::from(&f.path),
                        line: idx + 1,
                        message: format!(
                            "`{mac}` on the serve request path: return a ServeError instead"
                        ),
                    });
                }
            }
            if has_index_expr(code) {
                findings.push(Finding {
                    rule: RULE,
                    path: PathBuf::from(&f.path),
                    line: idx + 1,
                    message: "bracket indexing on the serve request path can panic: use \
                              `.get()`/`.chunks()` and return a ServeError"
                        .into(),
                });
            }
        }
    }
}

/// True when the line contains `expr[...]` indexing: a `[` whose previous
/// non-space character ends an expression (identifier, `)`, or `]`).
/// Attribute (`#[...]`), macro (`vec![...]`), and type/array positions do
/// not match.
fn has_index_expr(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        if let Some(&p) = prev {
            if p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            lex: lex(src),
        }
    }

    fn ws(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            files,
            ci_yml: String::new(),
            readme: String::new(),
            test_stems: Vec::new(),
            bench_stems: Vec::new(),
        }
    }

    fn knobs_fixture() -> SourceFile {
        file(
            "crates/core/src/knobs.rs",
            "pub const KNOBS: &[(&str, &str)] = &[\n    (\"MX_DEMO\", \"demo\"),\n];\n",
        )
    }

    #[test]
    fn unsafe_block_without_safety_comment_fires() {
        let w = ws(vec![file(
            "crates/core/src/k.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        )]);
        let mut found = Vec::new();
        rule_unsafe_safety(&w, &mut found);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unsafe-safety");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn unsafe_block_with_safety_comment_is_clean() {
        let w = ws(vec![file(
            "crates/core/src/k.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        )]);
        let mut found = Vec::new();
        rule_unsafe_safety(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unsafe_fn_needs_safety_docs_and_allow_suppresses() {
        let src = "unsafe fn raw() {}\n\n// audit:allow(unsafe-safety): fixture.\nunsafe fn raw2() {}\n\n/// # Safety\n/// Caller checks bounds.\nunsafe fn raw3() {}\n";
        let w = ws(vec![file("crates/core/src/k.rs", src)]);
        let mut found = Vec::new();
        rule_unsafe_safety(&w, &mut found);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src =
            "// this mentions unsafe { } freely\nfn f() { let s = \"unsafe { }\"; let _ = s; }\n";
        let w = ws(vec![file("crates/core/src/k.rs", src)]);
        let mut found = Vec::new();
        rule_unsafe_safety(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn target_feature_requires_unsafe_and_detection() {
        let src = "#[target_feature(enable = \"avx2\")]\nfn fast() {}\n";
        let w = ws(vec![file("crates/core/src/k.rs", src)]);
        let mut found = Vec::new();
        rule_target_feature(&w, &mut found);
        // Not unsafe + avx2 never detected in the crate = two findings.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "target-feature"));
    }

    #[test]
    fn target_feature_detected_unsafe_private_is_clean() {
        let kernel = "/// # Safety\n/// Requires AVX2.\n#[target_feature(enable = \"avx2\")]\nunsafe fn fast() {}\n";
        let gate = "fn pick() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        let w = ws(vec![
            file("crates/core/src/kern.rs", kernel),
            file("crates/core/src/gate.rs", gate),
        ]);
        let mut found = Vec::new();
        rule_target_feature(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn target_feature_pub_fn_fires() {
        let src = "#[target_feature(enable = \"sse2\")]\npub unsafe fn fast() {}\n";
        let w = ws(vec![file("crates/core/src/k.rs", src)]);
        let mut found = Vec::new();
        rule_target_feature(&w, &mut found);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("must not be `pub`"));
    }

    #[test]
    fn target_feature_avx512_multi_feature_attr_needs_every_gate() {
        // Comma-separated feature lists (the AVX-512 kernel style) are
        // checked feature by feature: a VNNI-featured fn in a crate that
        // only gates the F/BW baseline fires on exactly the missing name.
        let kernel = "/// # Safety\n/// Requires AVX-512 F/BW/VNNI.\n#[target_feature(enable = \"avx512f,avx512bw,avx512vnni\")]\nunsafe fn fused() {}\n";
        let gate = "fn baseline() -> bool {\n    std::arch::is_x86_feature_detected!(\"avx512f\")\n        && std::arch::is_x86_feature_detected!(\"avx512bw\")\n}\n";
        let w = ws(vec![
            file("crates/core/src/kern.rs", kernel),
            file("crates/core/src/gate.rs", gate),
        ]);
        let mut found = Vec::new();
        rule_target_feature(&w, &mut found);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("\"avx512vnni\""), "{found:?}");
    }

    #[test]
    fn target_feature_avx512_detected_unsafe_private_is_clean() {
        // The full AVX-512 kernel contract: private `unsafe fn`s behind a
        // comma-separated feature attr, every name (including the
        // separately detected VNNI) runtime-gated in the same crate.
        let kernel = "/// # Safety\n/// Requires AVX-512 F/BW.\n#[target_feature(enable = \"avx512f,avx512bw\")]\nunsafe fn wide() {}\n\n/// # Safety\n/// Requires AVX-512 F/BW/VNNI.\n#[target_feature(enable = \"avx512f,avx512bw,avx512vnni\")]\nunsafe fn fused() {}\n";
        let gate = "fn gates() -> bool {\n    std::arch::is_x86_feature_detected!(\"avx512f\")\n        && std::arch::is_x86_feature_detected!(\"avx512bw\")\n        && std::arch::is_x86_feature_detected!(\"avx512vnni\")\n}\n";
        let w = ws(vec![
            file("crates/core/src/kern.rs", kernel),
            file("crates/core/src/gate.rs", gate),
        ]);
        let mut found = Vec::new();
        rule_target_feature(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn ci_wiring_flags_unnamed_suites_and_benches() {
        let mut w = ws(vec![]);
        w.test_stems = vec!["alpha".into(), "beta".into()];
        w.bench_stems = vec!["gemm".into(), "ghost".into()];
        w.ci_yml = "run: cargo test -q --test alpha\nrun: |\n  for bench in gemm; do\n    cargo bench --bench \"$bench\"\n  done\n".into();
        let mut found = Vec::new();
        rule_ci_wiring(&w, &mut found);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("beta"));
        assert!(found[1].message.contains("ghost"));
    }

    #[test]
    fn env_knobs_flags_unregistered_reads_and_readme_drift() {
        let reader = file(
            "crates/bench/src/lib.rs",
            "fn f() { let _ = std::env::var(\"MX_ROGUE\"); }\n",
        );
        let mut w = ws(vec![knobs_fixture(), reader]);
        w.readme = "| `MX_DEMO` | demo |\n| `MX_GHOST` | never declared |\n".into();
        let mut found = Vec::new();
        rule_env_knobs(&w, &mut found);
        let msgs: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(msgs[0].contains("ROGUE"), "{msgs:?}");
        assert!(msgs[1].contains("GHOST"), "{msgs:?}");
    }

    #[test]
    fn env_knobs_clean_when_registry_and_readme_agree() {
        let reader = file(
            "crates/bench/src/lib.rs",
            "fn f() { let _ = mx_core::knobs::raw(\"MX_DEMO\"); }\n",
        );
        let mut w = ws(vec![knobs_fixture(), reader]);
        w.readme = "| `MX_DEMO` | demo |\n".into();
        let mut found = Vec::new();
        rule_env_knobs(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_registry_is_itself_a_finding() {
        let w = ws(vec![]);
        let mut found = Vec::new();
        rule_env_knobs(&w, &mut found);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("registry"));
    }

    #[test]
    fn serve_panic_flags_each_pattern() {
        let src = "fn handle(v: &[f32], i: usize) -> f32 {\n    let x = v[i];\n    let y: Option<f32> = None;\n    let y = y.unwrap();\n    assert!(x > 0.0);\n    if x > 1.0 { panic!(\"no\") }\n    x + y\n}\n";
        let w = ws(vec![file("crates/serve/src/lib.rs", src)]);
        let mut found = Vec::new();
        rule_serve_panic(&w, &mut found);
        assert_eq!(found.len(), 4, "{found:?}");
    }

    #[test]
    fn serve_panic_skips_tests_allows_and_other_crates() {
        let src = "fn ok(v: &[f32]) -> f32 {\n    // audit:allow(serve-panic): demo.\n    v[0]\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1, 1); let v = vec![1]; let _ = v[0]; }\n}\n";
        let serve = file("crates/serve/src/lib.rs", src);
        let core = file(
            "crates/core/src/lib.rs",
            "fn fine(v: &[f32]) -> f32 { v[0] }\n",
        );
        let w = ws(vec![serve, core]);
        let mut found = Vec::new();
        rule_serve_panic(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn serve_panic_ignores_non_panicking_lookalikes() {
        let src = "fn ok(v: Option<u32>) -> u32 {\n    let a = vec![0u32; 4];\n    debug_assert!(!a.is_empty());\n    v.unwrap_or_else(|| a.first().copied().unwrap_or(0))\n}\n";
        let w = ws(vec![file("crates/serve/src/lib.rs", src)]);
        let mut found = Vec::new();
        rule_serve_panic(&w, &mut found);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn index_detection_boundaries() {
        assert!(has_index_expr("let x = v[i];"));
        assert!(has_index_expr("rows[0][1]"));
        assert!(!has_index_expr("#[derive(Debug)]"));
        assert!(!has_index_expr("let a = vec![1, 2];"));
        assert!(!has_index_expr("let a: [u8; 4] = make();"));
    }
}
