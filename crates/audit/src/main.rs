//! CI entry point: audit the workspace, print findings, fail on any.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = mx_audit::workspace_root();
    let ws = match mx_audit::load_workspace(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!(
                "mx-audit: cannot load workspace at {}: {err}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let findings = mx_audit::run_all(&ws);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "mx-audit: OK — {} files, {} test suites, {} bench harnesses audited",
            ws.files.len(),
            ws.test_stems.len(),
            ws.bench_stems.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("mx-audit: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
