//! A hand-rolled lexical scanner for Rust source.
//!
//! The auditor cannot use `syn` (the build container has no crates.io
//! access), and it does not need a parse tree — every rule it enforces is
//! about *which channel* a token lives in: executable code, comment text,
//! or string-literal content. So this module splits each line of a source
//! file into exactly those three channels:
//!
//! - **code** — the line with comments stripped and every string/char
//!   literal blanked to an empty literal (`""` / `''`). Rules that match
//!   keywords, macro invocations, or index expressions scan this channel,
//!   which makes them immune to `unsafe` appearing in a doc comment or
//!   `panic!` appearing inside a fixture string.
//! - **comments** — the text of `//`, `///`, `//!`, and `/* */` comments,
//!   per line. `// SAFETY:` justifications and `audit:allow(...)`
//!   suppressions are looked up here.
//! - **strings** — the contents of every string literal, tagged with the
//!   1-based line it starts on. `MX_*` knob names and
//!   `target_feature`/`is_x86_feature_detected!` feature names travel
//!   through this channel.
//!
//! The scanner handles line comments, nested block comments, regular and
//! raw (`r"…"`, `r#"…"#`, byte) strings spanning multiple lines, and the
//! char-literal vs lifetime ambiguity (`'a'` vs `'a`). It does not try to
//! be a full lexer — float exponents, numeric suffixes, and the rest of
//! the token grammar pass through the code channel untouched, which is
//! exactly what the rules want.

/// One source file split into per-line code/comment channels plus the
/// string-literal contents.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Per line: code with comments removed and literals blanked.
    pub code: Vec<String>,
    /// Per line: concatenated comment text (empty when none).
    pub comments: Vec<String>,
    /// `(1-based start line, contents)` of every string literal.
    pub strings: Vec<(usize, String)>,
}

/// Cross-line scanner state.
enum Mode {
    /// Plain code.
    Code,
    /// Inside a block comment at the given nesting depth.
    Block(u32),
    /// Inside a regular (escaped) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Splits `src` into the three channels. Never fails: unterminated
/// constructs simply stay in their mode until end of input.
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let mut mode = Mode::Code;
    let mut cur_str = String::new();
    let mut cur_str_line = 0usize;

    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;

        while i < chars.len() {
            match mode {
                Mode::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        mode = if depth <= 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        // Keep the escaped char verbatim; rules only do
                        // whole-literal or substring matching.
                        cur_str.push('\\');
                        if let Some(&c) = chars.get(i + 1) {
                            cur_str.push(c);
                        }
                        i += 2;
                    } else if chars[i] == '"' {
                        out.strings
                            .push((cur_str_line, std::mem::take(&mut cur_str)));
                        code.push_str("\"\"");
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        cur_str.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"'
                        && (i + 1..=i + hashes as usize).all(|j| chars.get(j) == Some(&'#'))
                    {
                        out.strings
                            .push((cur_str_line, std::mem::take(&mut cur_str)));
                        code.push_str("\"\"");
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        cur_str.push(chars[i]);
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment (also ///, //!): rest of line.
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str;
                        cur_str_line = lineno;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                        // Possible raw/byte string prefix: [b] r #* " or b".
                        let mut j = i;
                        if chars[j] == 'b' {
                            j += 1;
                        }
                        let raw = chars.get(j) == Some(&'r');
                        if raw {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        // The branch is entered on 'r'/'b', so any match is
                        // a legal prefix; hashes are only legal on raw
                        // strings.
                        let opens = chars.get(j) == Some(&'"') && (raw || hashes == 0);
                        if opens {
                            cur_str_line = lineno;
                            mode = if raw { Mode::RawStr(hashes) } else { Mode::Str };
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime. A literal is '\…' or a
                        // single char followed by a closing quote.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: scan to the closing '.
                            code.push_str("''");
                            let mut j = i + 2;
                            while j < chars.len() {
                                if chars[j] == '\\' {
                                    j += 2;
                                } else if chars[j] == '\'' {
                                    j += 1;
                                    break;
                                } else {
                                    j += 1;
                                }
                            }
                            i = j;
                        } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'')
                        {
                            code.push_str("''");
                            i += 3;
                        } else {
                            // Lifetime (or label): keep the tick in code.
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        // A regular string only continues to the next line if the source
        // really does (lines() dropped the newline, which is legal string
        // content); record it so substring matching still works.
        if matches!(mode, Mode::Str | Mode::RawStr(_)) {
            cur_str.push('\n');
        }
        out.code.push(code);
        out.comments.push(comment);
    }
    out
}

/// True when `code` ends in an identifier character — used to keep the
/// `r`/`b` raw-string prefix detection from firing inside identifiers
/// like `var` or `grab`.
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Byte offsets of `word` in `line` at identifier boundaries (not preceded
/// or followed by `[A-Za-z0-9_]`).
pub fn find_word(line: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let at = from + rel;
        let pre_ok = at == 0 || {
            let p = bytes[at - 1];
            !(p.is_ascii_alphanumeric() || p == b'_')
        };
        let end = at + word.len();
        let post_ok = end >= bytes.len() || {
            let n = bytes[end];
            !(n.is_ascii_alphanumeric() || n == b'_')
        };
        if pre_ok && post_ok {
            hits.push(at);
        }
        from = at + word.len();
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let lx = lex("let x = 1; // unsafe panic!\n/* block\nstill comment */ let y = 2;");
        assert_eq!(lx.code[0].trim(), "let x = 1;");
        assert!(lx.comments[0].contains("unsafe panic!"));
        assert_eq!(lx.code[1], "");
        assert!(lx.comments[1].contains("block"));
        assert_eq!(lx.code[2].trim(), "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("a /* one /* two */ still */ b");
        assert_eq!(lx.code[0].replace(' ', ""), "ab");
    }

    #[test]
    fn strings_are_blanked_and_captured() {
        let lx = lex("env(\"MX_DEMO_KNOB\"); let s = \"panic!\";");
        assert!(!lx.code[0].contains("MX_DEMO_KNOB"));
        assert!(!lx.code[0].contains("panic!"));
        assert_eq!(lx.strings[0], (1, "MX_DEMO_KNOB".to_string()));
        assert_eq!(lx.strings[1], (1, "panic!".to_string()));
    }

    #[test]
    fn raw_strings_and_multiline() {
        let lx = lex("let s = r#\"line \"quoted\"\nnext\"#; code()");
        assert_eq!(lx.strings.len(), 1);
        assert_eq!(lx.strings[0].0, 1);
        assert!(lx.strings[0].1.contains("quoted"));
        assert!(lx.strings[0].1.contains("next"));
        assert!(lx.code[1].contains("code()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }");
        // Lifetimes stay (as ticks), char contents are blanked so brace
        // counting is not fooled by '{'.
        assert!(!lx.code[0].contains('{') || lx.code[0].matches('{').count() == 1);
        assert!(lx.code[0].contains("''"));
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("unsafe fn x", "unsafe"), vec![0]);
        assert!(find_word("deny(unsafe_op_in_unsafe_fn)", "unsafe").is_empty());
        assert_eq!(find_word("assert!(x)", "assert"), vec![0]);
        assert!(find_word("debug_assert!(x)", "assert").is_empty());
    }

    #[test]
    fn comment_containing_quote_does_not_open_string() {
        let lx = lex("// it's \"quoted\"\nlet x = 1;");
        assert_eq!(lx.code[1].trim(), "let x = 1;");
        assert!(lx.strings.is_empty());
    }
}
