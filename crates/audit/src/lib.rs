//! # mx-audit — workspace static-analysis pass
//!
//! The workspace's correctness story leans on contracts no compiler pass
//! checks: every `unsafe` kernel block carries a written justification,
//! every `#[target_feature]` kernel is reachable only behind runtime CPU
//! detection, every test suite and bench harness is actually wired into
//! CI, every `MX_*` environment knob is declared in one registry and
//! documented, and the serving request path never panics. `mx-audit`
//! turns those conventions into CI failures.
//!
//! The binary is dependency-free by design (the build container has no
//! crates.io access, so `syn` is off the table): [`lexer`] is a small
//! hand-rolled scanner that splits Rust source into code / comment /
//! string channels, and [`rules`] pattern-matches the channels. Run it
//! from the workspace root:
//!
//! ```text
//! cargo run -p mx-audit --release
//! ```
//!
//! Exit status is non-zero when any rule fires; findings print one per
//! line as `path:line: [rule] message`. Individual sites can be waived
//! with an `audit:allow(<rule-id>): <reason>` comment, which keeps every
//! exception greppable.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{run_all, Finding, SourceFile, Workspace};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata, the
/// vendored dependency stand-ins (external idioms, not ours to police),
/// and experiment outputs.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "results"];

/// Collects every auditable `.rs` path under `root`, sorted for
/// deterministic findings.
fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<io::Result<Vec<_>>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// File stems of `*.rs` directly inside `dir` (empty when the directory
/// does not exist).
fn stems(dir: &Path) -> Vec<String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let path = e.path();
            (path.extension().is_some_and(|x| x == "rs"))
                .then(|| path.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .flatten()
        })
        .collect();
    out.sort();
    out
}

/// Loads the workspace at `root` into the form the rules consume.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    for path in rust_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile {
            path: rel,
            lex: lexer::lex(&src),
        });
    }
    Ok(Workspace {
        files,
        ci_yml: fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap_or_default(),
        readme: fs::read_to_string(root.join("README.md")).unwrap_or_default(),
        test_stems: stems(&root.join("tests")),
        bench_stems: stems(&root.join("crates/bench/benches")),
    })
}

/// Locates the workspace root: the current directory when it holds the
/// workspace `Cargo.toml`, else the crate's grandparent (so the binary
/// works both from the root and under `cargo run -p mx-audit` from
/// anywhere inside the tree).
pub fn workspace_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        if fs::read_to_string(cwd.join("Cargo.toml"))
            .map(|s| s.contains("[workspace]"))
            .unwrap_or(false)
        {
            return cwd;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}
