//! The auditor's own gate: the real workspace must audit clean. This is
//! the test that keeps the contracts honest — adding an undocumented
//! knob, an unjustified `unsafe`, an unwired test suite, or a panic on
//! the serve request path fails this suite before CI even reaches the
//! dedicated audit step.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_audits_clean() {
    let ws = mx_audit::load_workspace(&repo_root()).expect("workspace loads");
    // Sanity: the walker actually found the tree (guards against a silent
    // "0 files audited, 0 findings" pass if the layout moves).
    assert!(
        ws.files.len() > 40,
        "suspiciously few files audited: {}",
        ws.files.len()
    );
    assert!(!ws.ci_yml.is_empty(), "ci.yml not found");
    assert!(!ws.readme.is_empty(), "README.md not found");
    assert!(
        ws.test_stems.len() >= 5,
        "test suites not discovered: {:?}",
        ws.test_stems
    );
    assert!(
        ws.bench_stems.len() >= 5,
        "bench harnesses not discovered: {:?}",
        ws.bench_stems
    );

    let findings = mx_audit::run_all(&ws);
    assert!(
        findings.is_empty(),
        "workspace must audit clean; findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_family_is_exercised_by_the_workspace() {
    // The clean pass must not be vacuous: the audited tree really contains
    // unsafe kernels, target_feature attributes, MX_ knobs, and serve
    // sources — i.e. each rule had something to look at.
    let ws = mx_audit::load_workspace(&repo_root()).expect("workspace loads");
    let any_line = |pat: &str| {
        ws.files
            .iter()
            .any(|f| f.lex.code.iter().any(|l| l.contains(pat)))
    };
    assert!(any_line("unsafe "), "no unsafe code found to audit");
    assert!(any_line("target_feature("), "no target_feature fns found");
    assert!(
        ws.files.iter().any(|f| f.path.ends_with("knobs.rs")),
        "knob registry missing"
    );
    assert!(
        ws.files
            .iter()
            .any(|f| f.path.starts_with("crates/serve/src")),
        "serve sources missing"
    );
}
