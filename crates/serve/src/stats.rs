//! Serving telemetry: lock-light recorders the workers update per batch,
//! and the [`ServeStats`] snapshot clients read.
//!
//! Counters are atomics; the latency reservoir and batch-size histogram sit
//! behind mutexes that are touched once per *batch*, not per request, so
//! telemetry stays off the per-request hot path. Pack counters come from
//! `mx_nn::qflow::plane_cache_counters` — process-wide tallies of weight
//! code-plane lowerings skipped (cache hit) vs performed — snapshotted at
//! server start so the reported numbers are deltas attributable to this
//! server's lifetime (other in-process quantized matmuls would inflate
//! them; the workspace's serving benches and tests run the server alone).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Most recent per-request latencies retained for percentile estimates.
/// Bounded so a long-lived server cannot grow without limit; at 64Ki
/// samples the p99 estimate is comfortably stable for bench-scale runs.
const LATENCY_CAP: usize = 65_536;

/// Shared mutable state behind a [`crate::ServerHandle`]'s stats.
pub(crate) struct StatsInner {
    /// Requests submitted but not yet answered (queue + in execution).
    pub(crate) in_flight: AtomicUsize,
    completed: AtomicU64,
    batches: AtomicU64,
    /// `hist[s - 1]` counts executed batches that coalesced `s` requests
    /// (before padding).
    hist: Mutex<Vec<u64>>,
    latencies: Mutex<LatencyRing>,
    /// `(hits, packs)` baseline at server start.
    packs_baseline: (u64, u64),
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> Self {
        StatsInner {
            in_flight: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            hist: Mutex::new(vec![0; max_batch]),
            latencies: Mutex::new(LatencyRing {
                samples: Vec::new(),
                next: 0,
            }),
            packs_baseline: mx_nn::qflow::plane_cache_counters(),
        }
    }

    /// Records one executed batch: its coalesced size and every member
    /// request's end-to-end latency.
    pub(crate) fn record_batch(&self, size: usize, latencies: &[Duration]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(size as u64, Ordering::Relaxed);
        // Telemetry is plain counters — a recorder that panicked mid-update
        // leaves nothing inconsistent worth propagating, so a poisoned lock
        // is simply reclaimed rather than cascading into the workers.
        let mut hist = self.hist.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(slot) = size.checked_sub(1).and_then(|i| hist.get_mut(i)) {
            *slot += 1;
        }
        drop(hist);
        let mut ring = self.latencies.lock().unwrap_or_else(|p| p.into_inner());
        for lat in latencies {
            let us = lat.as_micros().min(u128::from(u64::MAX)) as u64;
            if ring.samples.len() < LATENCY_CAP {
                ring.samples.push(us);
            } else {
                let slot = ring.next;
                if let Some(s) = ring.samples.get_mut(slot) {
                    *s = us;
                }
            }
            ring.next = (ring.next + 1) % LATENCY_CAP;
        }
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let hist = self.hist.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let mut sorted = self
            .latencies
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .samples
            .clone();
        sorted.sort_unstable();
        let (hits, packs) = mx_nn::qflow::plane_cache_counters();
        ServeStats {
            queue_depth: self.in_flight.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_histogram: hist,
            p50_latency_us: percentile(&sorted, 50),
            p99_latency_us: percentile(&sorted, 99),
            packs_avoided: hits.saturating_sub(self.packs_baseline.0),
            packs_performed: packs.saturating_sub(self.packs_baseline.1),
        }
    }
}

/// `p`-th percentile of an ascending-sorted sample set (classic
/// nearest-rank: the `⌈p/100 · len⌉`-th smallest sample; 0 when empty).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    let idx = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

/// A point-in-time view of a server's behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted but not yet answered.
    pub queue_depth: usize,
    /// Requests answered since the server started.
    pub completed: u64,
    /// Batches executed (each is one coalesced `forward_batch` call).
    pub batches: u64,
    /// `batch_histogram[s - 1]` = number of executed batches that coalesced
    /// `s` requests (pre-padding); length is the server's `max_batch`.
    pub batch_histogram: Vec<u64>,
    /// Median end-to-end request latency (submit → response), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub p99_latency_us: u64,
    /// Weight code-plane packs *skipped* because a cached plane was shared
    /// (across requests, batches, and formats) since the server started.
    pub packs_avoided: u64,
    /// Weight code-plane packs actually performed since the server started
    /// (ideally: one per model × weight-format pair).
    pub packs_performed: u64,
}

impl ServeStats {
    /// Mean coalesced batch size over all executed batches (0 when none).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let s = StatsInner::new(4);
        s.in_flight.store(3, Ordering::Relaxed);
        s.record_batch(2, &[Duration::from_micros(10), Duration::from_micros(30)]);
        s.record_batch(1, &[Duration::from_micros(20)]);
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batch_histogram, vec![1, 1, 0, 0]);
        assert_eq!(snap.p50_latency_us, 20);
        assert_eq!(snap.p99_latency_us, 30);
        assert!((snap.mean_batch_size() - 1.5).abs() < 1e-12);
    }
}
