//! Serving telemetry: lock-light recorders the workers update per batch,
//! and the [`ServeStats`] snapshot clients read.
//!
//! Counters are atomics; the latency reservoir, batch-size histogram, and
//! per-bucket service-time table sit behind mutexes that are touched once
//! per *batch*, not per request, so telemetry stays off the per-request hot
//! path. The same service-time observations feed the admission controller:
//! [`StatsInner::estimate_wait_us`] predicts how long a new request would
//! wait on a shard from the shard's queue depth, its per-request service
//! EWMA, and the per-`(model, bucket)` batch service EWMA. Pack counters
//! come from `mx_nn::qflow::plane_cache_counters` — process-wide tallies of
//! weight code-plane lowerings skipped (cache hit) vs performed —
//! snapshotted at server start so the reported numbers are deltas
//! attributable to this server's lifetime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Most recent per-request latencies retained for percentile estimates.
/// Bounded so a long-lived server cannot grow without limit; at 64Ki
/// samples the p999 estimate is comfortably stable for bench-scale runs.
const LATENCY_CAP: usize = 65_536;

/// Shared mutable state behind a [`crate::ServerHandle`]'s stats.
pub(crate) struct StatsInner {
    /// Requests admitted but not yet answered (queued + in execution),
    /// across all shards.
    pub(crate) in_flight: AtomicUsize,
    /// Per-shard admitted-but-unanswered depth — the admission
    /// controller's queue-length signal.
    shard_depth: Vec<AtomicUsize>,
    /// Per-shard per-*request* service-time EWMA, microseconds (0 = cold).
    shard_service_us: Vec<AtomicU64>,
    /// Per-`(model, bucket len)` per-*batch* service-time EWMA,
    /// microseconds.
    bucket_service_us: Mutex<HashMap<(usize, usize), u64>>,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    /// `hist[s - 1]` counts executed batches that coalesced `s` requests
    /// (before padding).
    hist: Mutex<Vec<u64>>,
    latencies: Mutex<LatencyRing>,
    /// `(hits, packs)` baseline at server start.
    packs_baseline: (u64, u64),
    /// Batches served straight from a model's compiled-plan cache.
    plan_hits: AtomicU64,
    /// `(plans compiled, prepack hoists, arena bytes)` baseline at server
    /// start — the process-wide `mx_nn::plan` counters, snapshotted so the
    /// reported numbers are deltas attributable to this server.
    plans_baseline: (u64, u64, u64),
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize, shards: usize) -> Self {
        StatsInner {
            in_flight: AtomicUsize::new(0),
            shard_depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            shard_service_us: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            bucket_service_us: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            hist: Mutex::new(vec![0; max_batch]),
            latencies: Mutex::new(LatencyRing {
                samples: Vec::new(),
                next: 0,
            }),
            packs_baseline: mx_nn::qflow::plane_cache_counters(),
            plan_hits: AtomicU64::new(0),
            plans_baseline: mx_nn::plan::plan_counters(),
        }
    }

    /// Counts one batch served from the compiled-plan cache (no planning,
    /// gating, or allocation beyond the worker's arena).
    pub(crate) fn record_plan_hit(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks `n` requests admitted onto `shard` (submit side).
    pub(crate) fn admitted(&self, shard: usize, n: usize) {
        self.in_flight.fetch_add(n, Ordering::Relaxed);
        if let Some(d) = self.shard_depth.get(shard) {
            d.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Removes `n` requests from `shard`'s depth (answered, shed after
    /// enqueue, or expired).
    pub(crate) fn retired(&self, shard: usize, n: usize) {
        self.in_flight.fetch_sub(n, Ordering::Relaxed);
        if let Some(d) = self.shard_depth.get(shard) {
            d.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Counts one request shed by admission control (always answered with a
    /// typed rejection, never silently dropped).
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` requests whose deadline expired before execution.
    pub(crate) fn record_expired(&self, n: usize) {
        self.expired.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one executed batch: its coalesced size, every member
    /// request's end-to-end latency, and the observed service time feeding
    /// the shard / bucket admission EWMAs.
    pub(crate) fn record_batch(
        &self,
        shard: usize,
        model: usize,
        len: usize,
        size: usize,
        latencies: &[Duration],
        service: Duration,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(size as u64, Ordering::Relaxed);
        let service_us = (service.as_micros().min(u128::from(u64::MAX)) as u64).max(1);
        if let Some(ewma) = self.shard_service_us.get(shard) {
            // Racy read-modify-write is fine: this is a smoothing estimate,
            // and a lost update costs one observation of smoothing.
            let per_request = (service_us / size.max(1) as u64).max(1);
            ewma.store(
                ewma_step(ewma.load(Ordering::Relaxed), per_request),
                Ordering::Relaxed,
            );
        }
        // Telemetry is plain counters — a recorder that panicked mid-update
        // leaves nothing inconsistent worth propagating, so a poisoned lock
        // is simply reclaimed rather than cascading into the workers.
        let mut buckets = self
            .bucket_service_us
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let slot = buckets.entry((model, len)).or_insert(0);
        *slot = ewma_step(*slot, service_us);
        drop(buckets);
        let mut hist = self.hist.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(slot) = size.checked_sub(1).and_then(|i| hist.get_mut(i)) {
            *slot += 1;
        }
        drop(hist);
        let mut ring = self.latencies.lock().unwrap_or_else(|p| p.into_inner());
        for lat in latencies {
            let us = lat.as_micros().min(u128::from(u64::MAX)) as u64;
            if ring.samples.len() < LATENCY_CAP {
                ring.samples.push(us);
            } else {
                let slot = ring.next;
                if let Some(s) = ring.samples.get_mut(slot) {
                    *s = us;
                }
            }
            ring.next = (ring.next + 1) % LATENCY_CAP;
        }
    }

    /// Predicted wait (µs) for a new `(model, len)` request on `shard`:
    /// the queued work ahead of it (depth × per-request shard EWMA) plus
    /// its own bucket's batch service EWMA. Cold EWMAs contribute zero, so
    /// an unobserved server admits everything.
    pub(crate) fn estimate_wait_us(&self, shard: usize, model: usize, len: usize) -> u64 {
        let depth = self
            .shard_depth
            .get(shard)
            .map_or(0, |d| d.load(Ordering::Relaxed)) as u64;
        let per_request = self
            .shard_service_us
            .get(shard)
            .map_or(0, |e| e.load(Ordering::Relaxed));
        let bucket = self
            .bucket_service_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(model, len))
            .copied()
            .unwrap_or(0);
        depth.saturating_mul(per_request).saturating_add(bucket)
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let hist = self.hist.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let mut sorted = self
            .latencies
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .samples
            .clone();
        sorted.sort_unstable();
        let (hits, packs) = mx_nn::qflow::plane_cache_counters();
        let (plans, hoists, arena) = mx_nn::plan::plan_counters();
        ServeStats {
            queue_depth: self.in_flight.load(Ordering::Relaxed),
            shard_depths: self
                .shard_depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_histogram: hist,
            p50_latency_us: percentile_permille(&sorted, 500),
            p99_latency_us: percentile_permille(&sorted, 990),
            p999_latency_us: percentile_permille(&sorted, 999),
            packs_avoided: hits.saturating_sub(self.packs_baseline.0),
            packs_performed: packs.saturating_sub(self.packs_baseline.1),
            plans_compiled: plans.saturating_sub(self.plans_baseline.0),
            plan_cache_hits: self.plan_hits.load(Ordering::Relaxed),
            prepack_hoists: hoists.saturating_sub(self.plans_baseline.1),
            plan_arena_bytes: arena.saturating_sub(self.plans_baseline.2),
        }
    }
}

/// One smoothing step of the service-time EWMA: `(3·old + obs) / 4`,
/// seeded directly with the first observation.
fn ewma_step(old: u64, obs: u64) -> u64 {
    if old == 0 {
        obs
    } else {
        (3 * old + obs) / 4
    }
}

/// `pm`-permille point of an ascending-sorted sample set (classic
/// nearest-rank: the `⌈pm/1000 · len⌉`-th smallest sample; 0 when empty).
fn percentile_permille(sorted: &[u64], pm: usize) -> u64 {
    let idx = (pm * sorted.len()).div_ceil(1000).max(1) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

/// A point-in-time view of a server's behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted but not yet answered, across all shards.
    pub queue_depth: usize,
    /// Per-shard admitted-but-unanswered depth, indexed by shard.
    pub shard_depths: Vec<usize>,
    /// Requests answered successfully-or-erroneously after execution
    /// (excludes shed and expired requests) since the server started.
    pub completed: u64,
    /// Requests rejected by admission control ([`crate::ServeError::Overloaded`]).
    pub shed: u64,
    /// Requests whose deadline expired before execution
    /// ([`crate::ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Batches executed (each is one coalesced `forward_batch` call).
    pub batches: u64,
    /// `batch_histogram[s - 1]` = number of executed batches that coalesced
    /// `s` requests (pre-padding); length is the server's `max_batch`.
    pub batch_histogram: Vec<u64>,
    /// Median end-to-end request latency (submit → response), microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub p99_latency_us: u64,
    /// 99.9th-percentile end-to-end request latency, microseconds.
    pub p999_latency_us: u64,
    /// Weight code-plane packs *skipped* because a cached plane was shared
    /// (across requests, batches, and formats) since the server started.
    pub packs_avoided: u64,
    /// Weight code-plane packs actually performed since the server started
    /// (ideally: one per model × weight-format pair).
    pub packs_performed: u64,
    /// Execution plans compiled since the server started (ideally: one per
    /// model × config × bucket key ever served).
    pub plans_compiled: u64,
    /// Batches served straight from a model's compiled-plan cache — the
    /// steady-state path that does zero planning, gating, or allocation
    /// beyond the per-worker arena.
    pub plan_cache_hits: u64,
    /// Weight-side `pack_cols` lowerings hoisted to plan time since the
    /// server started (each one removed from every subsequent batch).
    pub prepack_hoists: u64,
    /// Scratch-arena bytes laid out by plan compilation since the server
    /// started (liveness-ordered high-water total, not live memory).
    pub plan_arena_bytes: u64,
}

impl ServeStats {
    /// Mean coalesced batch size over all executed batches (0 when none).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile_permille(&[], 500), 0);
        assert_eq!(percentile_permille(&[7], 990), 7);
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_permille(&v, 500), 500);
        assert_eq!(percentile_permille(&v, 990), 990);
        assert_eq!(percentile_permille(&v, 999), 999);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let s = StatsInner::new(4, 2);
        s.admitted(1, 3);
        s.record_batch(
            1,
            0,
            16,
            2,
            &[Duration::from_micros(10), Duration::from_micros(30)],
            Duration::from_micros(40),
        );
        s.record_batch(
            1,
            0,
            16,
            1,
            &[Duration::from_micros(20)],
            Duration::from_micros(20),
        );
        s.retired(1, 3);
        s.admitted(0, 1);
        s.record_shed();
        s.record_expired(2);
        s.record_plan_hit();
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.shard_depths, vec![1, 0]);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.expired, 2);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batch_histogram, vec![1, 1, 0, 0]);
        assert_eq!(snap.p50_latency_us, 20);
        assert_eq!(snap.p99_latency_us, 30);
        assert_eq!(snap.p999_latency_us, 30);
        assert!((snap.mean_batch_size() - 1.5).abs() < 1e-12);
        // The hit counter is per-server; the compile/hoist/arena counters
        // are process-wide deltas, so other tests in the same process may
        // move them — only the local counter has an exact expectation.
        assert_eq!(snap.plan_cache_hits, 1);
    }

    #[test]
    fn service_ewma_feeds_the_wait_estimate() {
        let s = StatsInner::new(4, 1);
        // Cold server: everything estimates to zero wait.
        assert_eq!(s.estimate_wait_us(0, 0, 8), 0);
        // One observed batch of 2 requests at 200µs: per-request EWMA 100µs,
        // bucket EWMA 200µs.
        s.record_batch(0, 0, 8, 2, &[], Duration::from_micros(200));
        assert_eq!(s.estimate_wait_us(0, 0, 8), 200); // depth 0 → bucket only
        s.admitted(0, 3);
        assert_eq!(s.estimate_wait_us(0, 0, 8), 3 * 100 + 200);
        // A different bucket is still cold: only the depth term applies.
        assert_eq!(s.estimate_wait_us(0, 0, 4), 3 * 100);
        // Smoothing: a second observation moves the EWMA a quarter of the way.
        s.record_batch(0, 0, 8, 2, &[], Duration::from_micros(600));
        assert_eq!(s.estimate_wait_us(0, 0, 8), 3 * 150 + 300);
    }
}
