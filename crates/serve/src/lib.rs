//! # mx-serve — batched direct-cast inference over shared weight planes
//!
//! The paper's systems argument is that shared-microexponent formats make
//! direct-cast inference cheap enough to *serve*: weights lower once to
//! shift-aligned integer code planes and every subsequent request rides the
//! integer datapath. This crate turns that into a server:
//!
//! - a **registry** of zoo models ([`mx_models::zoo::BatchModel`]), each
//!   behind a mutex so worker threads can execute different models
//!   concurrently;
//! - an injector **request queue** (crossbeam MPMC channel) accepting
//!   `(model, QuantConfig, input)` jobs from any number of client threads;
//! - a **batcher** (dispatcher thread) that drains the queue and coalesces
//!   same-model / same-config requests into one batch `forward_batch` call
//!   of at most `max_batch` requests — the weight-side `PackedOperand` is
//!   fetched from `mx-nn`'s generation-keyed, per-format plane cache, so it
//!   is lowered **once** and shared by every request in every batch;
//! - **workers** that execute batches through the prepacked integer GEMM
//!   and split the output back into per-request responses.
//!
//! Batching is **semantically invisible**: every tensor op on the zoo's
//! inference path is row- (or sequence-) independent, so a request's
//! response is bit-identical to running it alone — across formats, batch
//! sizes, ragged final batches, and zero-padded batches (the workspace's
//! `serve_end_to_end` suite asserts this bit for bit). What batching buys
//! is throughput: B-side code traffic, kernel dispatch, and the A-side
//! pack's per-call overhead amortize over the coalesced rows (measured in
//! the `serving_throughput` bench).
//!
//! ## Example
//!
//! ```
//! use mx_serve::{RequestInput, Server, ServerConfig};
//! use mx_models::zoo::DenseGemm;
//! use mx_nn::{QuantConfig, TensorFormat};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut server = Server::new(ServerConfig::default());
//! server.register(
//!     "ffn",
//!     Box::new(DenseGemm::new(&mut rng, 64, 128, QuantConfig::fp32())),
//! );
//! let handle = server.start();
//! let cfg = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
//! let y = handle
//!     .infer("ffn", cfg, RequestInput::Pixels(vec![0.5; 64]))
//!     .unwrap();
//! assert_eq!(y.len(), 128);
//! assert_eq!(handle.stats().completed, 1);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod stats;

pub use stats::ServeStats;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mx_models::zoo::{BatchModel, InputKind, ZooInput};
use mx_nn::qflow::QuantConfig;
use stats::StatsInner;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// An owned request payload (the borrowed twin is
/// [`mx_models::zoo::ZooInput`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestInput {
    /// Token ids, for [`InputKind::Tokens`] models.
    Tokens(Vec<usize>),
    /// Raw `f32` features, for [`InputKind::Pixels`] models.
    Pixels(Vec<f32>),
}

impl RequestInput {
    fn kind(&self) -> InputKind {
        match self {
            RequestInput::Tokens(_) => InputKind::Tokens,
            RequestInput::Pixels(_) => InputKind::Pixels,
        }
    }

    fn len(&self) -> usize {
        match self {
            RequestInput::Tokens(t) => t.len(),
            RequestInput::Pixels(p) => p.len(),
        }
    }
}

/// Why a request was rejected or lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No registered model has this name.
    UnknownModel(String),
    /// The payload kind does not match the model's input kind.
    WrongInputKind {
        /// Model name the request addressed.
        model: String,
        /// The kind the model expects.
        expected: InputKind,
        /// The kind the request carried.
        got: InputKind,
    },
    /// The payload length does not match the model's per-request length.
    WrongInputLen {
        /// Model name the request addressed.
        model: String,
        /// Elements per request the model expects.
        expected: usize,
        /// Elements the request carried.
        got: usize,
    },
    /// The model panicked while executing a batch (this request's or an
    /// earlier one that poisoned the model). The worker survives; other
    /// models keep serving.
    ModelPanicked {
        /// Model name whose `forward_batch` (or quant switch) panicked.
        model: String,
    },
    /// The model returned a buffer whose length is not
    /// `batch · output_len()`, so per-request rows cannot be sliced out.
    BadModelOutput {
        /// Model name that violated its output contract.
        model: String,
        /// Elements the contract promised (`batch · output_len()`).
        expected: usize,
        /// Elements the model actually returned.
        got: usize,
    },
    /// The server shut down before answering.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::WrongInputKind {
                model,
                expected,
                got,
            } => write!(f, "model {model:?} expects {expected:?} input, got {got:?}"),
            ServeError::WrongInputLen {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model:?} expects {expected} elements per request, got {got}"
            ),
            ServeError::ModelPanicked { model } => {
                write!(f, "model {model:?} panicked while executing a batch")
            }
            ServeError::BadModelOutput {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model:?} returned {got} elements, contract promised {expected}"
            ),
            ServeError::Disconnected => write!(f, "server shut down before responding"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-request outcome: the flattened response row, or a rejection.
pub type ServeResult = Result<Vec<f32>, ServeError>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing batches. Distinct models execute
    /// concurrently; one model's batches serialize on its mutex.
    pub workers: usize,
    /// Most requests coalesced into one `forward_batch` call.
    pub max_batch: usize,
    /// Pad every ragged batch up to `max_batch` with zero requests whose
    /// outputs are discarded. Costs compute, but keeps the GEMM shape (and
    /// therefore the per-thread activation-pack scratch size) constant —
    /// the classic fixed-shape serving trade. Semantically invisible either
    /// way.
    pub pad_batches: bool,
    /// Bound on the injector queue (`None` = unbounded): submitting past it
    /// blocks the client, applying backpressure.
    pub queue_capacity: Option<usize>,
}

impl Default for ServerConfig {
    /// One worker, batches of up to 8, no padding, unbounded queue.
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            max_batch: 8,
            pad_batches: false,
            queue_capacity: None,
        }
    }
}

/// One request in flight through the queue.
struct Job {
    model: usize,
    cfg: QuantConfig,
    input: RequestInput,
    enqueued: Instant,
    resp: Sender<ServeResult>,
}

/// A coalesced group of same-model / same-config jobs.
struct Batch {
    model: usize,
    cfg: QuantConfig,
    jobs: Vec<Job>,
}

/// A registered model plus the request contract captured at registration.
struct ModelEntry {
    name: String,
    kind: InputKind,
    input_len: usize,
    output_len: usize,
    model: Mutex<Box<dyn BatchModel>>,
}

/// A server under construction: register models, then [`Server::start`].
pub struct Server {
    config: ServerConfig,
    registry: Vec<ModelEntry>,
}

impl Server {
    /// Creates an empty server with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `max_batch` is zero.
    pub fn new(config: ServerConfig) -> Self {
        // audit:allow(serve-panic): construction-time contract, not the
        // request path — a misconfigured server should fail at build time.
        assert!(config.workers > 0, "at least one worker");
        // audit:allow(serve-panic): construction-time contract.
        assert!(config.max_batch > 0, "batches must hold at least 1 request");
        Server {
            config,
            registry: Vec::new(),
        }
    }

    /// Registers `model` under `name`. The request contract (input kind,
    /// per-request input/output lengths) is captured now and validated at
    /// submit time.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn register(&mut self, name: &str, model: Box<dyn BatchModel>) -> &mut Self {
        // audit:allow(serve-panic): construction-time contract, not the
        // request path — duplicate names are a deployment bug.
        assert!(
            self.registry.iter().all(|e| e.name != name),
            "model {name:?} already registered"
        );
        self.registry.push(ModelEntry {
            name: name.to_string(),
            kind: model.input_kind(),
            input_len: model.input_len(),
            output_len: model.output_len(),
            model: Mutex::new(model),
        });
        self
    }

    /// Starts the dispatcher and worker threads, returning the client
    /// handle. Dropping (or [`ServerHandle::shutdown`]ting) the handle
    /// drains in-flight requests and joins every thread.
    pub fn start(self) -> ServerHandle {
        let registry = Arc::new(self.registry);
        let stats = Arc::new(StatsInner::new(self.config.max_batch));
        let (job_tx, job_rx) = match self.config.queue_capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        let (batch_tx, batch_rx) = unbounded::<Batch>();
        let mut threads = Vec::with_capacity(self.config.workers + 1);
        let max_batch = self.config.max_batch;
        threads.push(std::thread::spawn(move || {
            dispatch_loop(job_rx, batch_tx, max_batch);
        }));
        for _ in 0..self.config.workers {
            let batch_rx = batch_rx.clone();
            let registry = registry.clone();
            let stats = stats.clone();
            let config = self.config.clone();
            threads.push(std::thread::spawn(move || {
                while let Ok(batch) = batch_rx.recv() {
                    execute_batch(batch, &registry, &stats, &config);
                }
            }));
        }
        drop(batch_rx);
        ServerHandle {
            job_tx: Some(job_tx),
            registry,
            stats,
            threads,
        }
    }
}

/// The batcher: drains whatever is queued, groups it by
/// `(model, QuantConfig)` in arrival order, and emits batches of at most
/// `max_batch` requests. Every drained job is flushed each round — partial
/// groups become ragged batches rather than waiting for stragglers, so a
/// burst of synchronous clients can never deadlock behind a half-full
/// batch.
fn dispatch_loop(job_rx: Receiver<Job>, batch_tx: Sender<Batch>, max_batch: usize) {
    while let Ok(first) = job_rx.recv() {
        let mut drained = vec![first];
        let mut lingered = false;
        loop {
            while drained.len() < 4 * max_batch {
                match job_rx.try_recv() {
                    Ok(job) => drained.push(job),
                    Err(_) => break,
                }
            }
            if drained.len() >= max_batch || lingered {
                break;
            }
            // Micro-batch linger: one scheduler slot for the producers to
            // finish their burst. Without it, a single-core box ping-pongs —
            // every submit wakes the dispatcher, which forwards a batch of
            // one before the client can enqueue the next request. One yield
            // bounds the added latency at a context switch while letting a
            // burst coalesce.
            lingered = true;
            std::thread::yield_now();
        }
        let mut groups: Vec<Batch> = Vec::new();
        for job in drained {
            match groups
                .iter_mut()
                .find(|b| b.model == job.model && b.cfg == job.cfg)
            {
                Some(b) => b.jobs.push(job),
                None => groups.push(Batch {
                    model: job.model,
                    cfg: job.cfg,
                    jobs: vec![job],
                }),
            }
        }
        for group in groups {
            let Batch { model, cfg, jobs } = group;
            let mut chunk = Vec::with_capacity(max_batch.min(jobs.len()));
            for job in jobs {
                chunk.push(job);
                if chunk.len() == max_batch
                    && batch_tx
                        .send(Batch {
                            model,
                            cfg,
                            jobs: std::mem::take(&mut chunk),
                        })
                        .is_err()
                {
                    return;
                }
            }
            if !chunk.is_empty()
                && batch_tx
                    .send(Batch {
                        model,
                        cfg,
                        jobs: chunk,
                    })
                    .is_err()
            {
                return;
            }
        }
    }
    // job_tx dropped (shutdown): queue drained, dropping batch_tx ends the
    // workers once they finish what is in flight.
}

/// Runs one coalesced batch on its model and answers every member request.
///
/// Model failures — a poisoned mutex from an earlier panic, a panic during
/// this batch, an output buffer that violates the length contract — are
/// answered as [`ServeError`]s on every member request. The worker thread
/// itself never unwinds, so one misbehaving model cannot take down the
/// server: other models (and this one's error reporting) keep serving.
fn execute_batch(batch: Batch, registry: &[ModelEntry], stats: &StatsInner, config: &ServerConfig) {
    let n = batch.jobs.len();
    let result = run_batch(&batch, registry, config);
    // Publish telemetry *before* answering: a synchronous client that just
    // got its response must see itself counted in the next snapshot.
    // Failed batches still count — the requests were accepted and answered.
    let latencies: Vec<_> = batch.jobs.iter().map(|j| j.enqueued.elapsed()).collect();
    stats.in_flight.fetch_sub(n, Ordering::Relaxed);
    stats.record_batch(n, &latencies);
    match result {
        Ok(rows) => {
            for (job, row) in batch.jobs.into_iter().zip(rows) {
                // A client that dropped its Pending receiver discards the row.
                let _ = job.resp.send(Ok(row));
            }
        }
        Err(err) => {
            for job in batch.jobs {
                let _ = job.resp.send(Err(err.clone()));
            }
        }
    }
}

/// Executes the model call for one batch, returning per-request output rows
/// or the error every member request should be answered with.
fn run_batch(
    batch: &Batch,
    registry: &[ModelEntry],
    config: &ServerConfig,
) -> Result<Vec<Vec<f32>>, ServeError> {
    let entry = registry.get(batch.model).ok_or(ServeError::Disconnected)?; // index minted at submit; defensive
    let n = batch.jobs.len();
    // Padding keeps the executed GEMM at the full batch shape; the padded
    // rows are zero requests whose outputs are sliced away below.
    let eff = if config.pad_batches {
        config.max_batch
    } else {
        n
    };
    let per_in = entry.input_len;
    // Concatenate the (submit-validated) payloads. A kind mismatch here
    // would be an internal bug; report it as the kind error rather than
    // killing the worker.
    let out = match entry.kind {
        InputKind::Tokens => {
            let mut buf = Vec::with_capacity(eff * per_in);
            for job in &batch.jobs {
                let RequestInput::Tokens(t) = &job.input else {
                    return Err(ServeError::WrongInputKind {
                        model: entry.name.clone(),
                        expected: InputKind::Tokens,
                        got: job.input.kind(),
                    });
                };
                buf.extend_from_slice(t);
            }
            buf.resize(eff * per_in, 0);
            forward_guarded(entry, batch.cfg, ZooInput::Tokens(&buf), eff)?
        }
        InputKind::Pixels => {
            let mut buf = Vec::with_capacity(eff * per_in);
            for job in &batch.jobs {
                let RequestInput::Pixels(p) = &job.input else {
                    return Err(ServeError::WrongInputKind {
                        model: entry.name.clone(),
                        expected: InputKind::Pixels,
                        got: job.input.kind(),
                    });
                };
                buf.extend_from_slice(p);
            }
            buf.resize(eff * per_in, 0.0);
            forward_guarded(entry, batch.cfg, ZooInput::Pixels(&buf), eff)?
        }
    };
    let per_out = entry.output_len;
    if out.len() != eff * per_out {
        return Err(ServeError::BadModelOutput {
            model: entry.name.clone(),
            expected: eff * per_out,
            got: out.len(),
        });
    }
    if per_out == 0 {
        // Zero-width outputs: every row is empty; `chunks(0)` would panic.
        return Ok(vec![Vec::new(); n]);
    }
    Ok(out.chunks(per_out).take(n).map(<[f32]>::to_vec).collect())
}

/// Locks the model and runs `set_quant` + `forward_batch` with a panic
/// guard. A panic inside the model poisons its mutex (the guard is moved
/// into the unwinding closure and dropped mid-panic), so later batches for
/// the same model fail fast with [`ServeError::ModelPanicked`] while the
/// worker — and every other model — keeps running.
fn forward_guarded(
    entry: &ModelEntry,
    cfg: QuantConfig,
    input: ZooInput<'_>,
    eff: usize,
) -> Result<Vec<f32>, ServeError> {
    let Ok(guard) = entry.model.lock() else {
        return Err(ServeError::ModelPanicked {
            model: entry.name.clone(),
        });
    };
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut model = guard;
        // Per-request format selection = direct cast on the shared model.
        // Weights are untouched, so each format's cached weight plane stays
        // warm across config switches.
        model.set_quant(cfg);
        model.forward_batch(input, eff)
    }))
    .map_err(|_| ServeError::ModelPanicked {
        model: entry.name.clone(),
    })
}

/// Client handle to a running server: submit requests (from any thread —
/// submission takes `&self`), read stats, shut down.
pub struct ServerHandle {
    job_tx: Option<Sender<Job>>,
    registry: Arc<Vec<ModelEntry>>,
    stats: Arc<StatsInner>,
    threads: Vec<JoinHandle<()>>,
}

/// A response that has not arrived yet (returned by
/// [`ServerHandle::submit`]).
pub struct Pending {
    rx: Receiver<ServeResult>,
}

impl Pending {
    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResult {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::Disconnected),
        }
    }
}

impl ServerHandle {
    /// Validates and enqueues a request, returning a [`Pending`] response
    /// without blocking on execution. Submitting several requests before
    /// waiting is how a single client thread gets them coalesced into one
    /// batch.
    pub fn submit(
        &self,
        model: &str,
        cfg: QuantConfig,
        input: RequestInput,
    ) -> Result<Pending, ServeError> {
        let (id, entry) = self
            .registry
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        if input.kind() != entry.kind {
            return Err(ServeError::WrongInputKind {
                model: model.to_string(),
                expected: entry.kind,
                got: input.kind(),
            });
        }
        if input.len() != entry.input_len {
            return Err(ServeError::WrongInputLen {
                model: model.to_string(),
                expected: entry.input_len,
                got: input.len(),
            });
        }
        // `job_tx` is cleared only by shutdown, which takes the handle by
        // value — but answer `Disconnected` rather than panicking if that
        // invariant ever breaks.
        let tx = self.job_tx.as_ref().ok_or(ServeError::Disconnected)?;
        let (resp, rx) = unbounded();
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let sent = tx.send(Job {
            model: id,
            cfg,
            input,
            enqueued: Instant::now(),
            resp,
        });
        if sent.is_err() {
            self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::Disconnected);
        }
        Ok(Pending { rx })
    }

    /// Synchronous inference: submit and block until the response arrives.
    pub fn infer(&self, model: &str, cfg: QuantConfig, input: RequestInput) -> ServeResult {
        self.submit(model, cfg, input)?.wait()
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Registered model names, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.registry.iter().map(|e| e.name.clone()).collect()
    }

    /// Graceful shutdown: stops accepting requests, drains everything in
    /// flight, and joins the dispatcher and workers. (Dropping the handle
    /// does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.job_tx.take(); // dispatcher sees the disconnect after draining
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_models::zoo::DenseGemm;
    use mx_nn::TensorFormat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mx6() -> QuantConfig {
        QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
    }

    fn dense_server(workers: usize, max_batch: usize) -> ServerHandle {
        let mut rng = StdRng::seed_from_u64(3);
        let mut server = Server::new(ServerConfig {
            workers,
            max_batch,
            ..ServerConfig::default()
        });
        server.register(
            "dense",
            Box::new(DenseGemm::new(&mut rng, 32, 16, QuantConfig::fp32())),
        );
        server.start()
    }

    fn row(salt: usize) -> Vec<f32> {
        (0..32).map(|i| ((i + salt) as f32 * 0.19).sin()).collect()
    }

    #[test]
    fn sync_inference_round_trip() {
        let handle = dense_server(1, 4);
        let y = handle
            .infer("dense", mx6(), RequestInput::Pixels(row(0)))
            .unwrap();
        assert_eq!(y.len(), 16);
        let again = handle
            .infer("dense", mx6(), RequestInput::Pixels(row(0)))
            .unwrap();
        assert_eq!(y, again, "same request, same bits");
        let stats = handle.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(handle.model_names(), vec!["dense".to_string()]);
        handle.shutdown();
    }

    #[test]
    fn submit_validates_before_enqueue() {
        let handle = dense_server(1, 4);
        assert_eq!(
            handle
                .infer("nope", mx6(), RequestInput::Pixels(row(0)))
                .unwrap_err(),
            ServeError::UnknownModel("nope".into())
        );
        assert!(matches!(
            handle
                .infer("dense", mx6(), RequestInput::Tokens(vec![0; 32]))
                .unwrap_err(),
            ServeError::WrongInputKind { .. }
        ));
        assert!(matches!(
            handle
                .infer("dense", mx6(), RequestInput::Pixels(vec![0.0; 7]))
                .unwrap_err(),
            ServeError::WrongInputLen {
                expected: 32,
                got: 7,
                ..
            }
        ));
        // Rejections never count as in-flight work.
        assert_eq!(handle.stats().queue_depth, 0);
        assert_eq!(handle.stats().completed, 0);
    }

    #[test]
    fn burst_submission_coalesces_and_matches_serial() {
        let handle = dense_server(1, 8);
        // Serial references first (batches of 1).
        let want: Vec<Vec<f32>> = (0..12)
            .map(|i| {
                handle
                    .infer("dense", mx6(), RequestInput::Pixels(row(i)))
                    .unwrap()
            })
            .collect();
        // Burst: submit all, then wait — the dispatcher coalesces.
        let pending: Vec<Pending> = (0..12)
            .map(|i| {
                handle
                    .submit("dense", mx6(), RequestInput::Pixels(row(i)))
                    .unwrap()
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap(), want[i], "request {i}");
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 24);
        assert_eq!(
            stats.batch_histogram.iter().sum::<u64>(),
            stats.batches,
            "histogram covers every batch"
        );
        assert!(stats.p50_latency_us <= stats.p99_latency_us);
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_and_drop_is_idempotent() {
        let handle = dense_server(2, 4);
        let p = handle
            .submit("dense", mx6(), RequestInput::Pixels(row(9)))
            .unwrap();
        handle.shutdown(); // drains the in-flight request first
        assert_eq!(p.wait().unwrap().len(), 16);
    }

    /// Pixel model that panics when a request's first feature is the magic
    /// value, and otherwise echoes `input_len` zeros per request — the
    /// misbehaving-tenant stand-in for the fault-isolation tests.
    struct Grenade;

    impl BatchModel for Grenade {
        fn input_kind(&self) -> InputKind {
            InputKind::Pixels
        }

        fn input_len(&self) -> usize {
            4
        }

        fn output_len(&self) -> usize {
            2
        }

        fn set_quant(&mut self, _cfg: QuantConfig) {}

        fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
            let ZooInput::Pixels(px) = input else {
                panic!("pixels expected")
            };
            assert!(!px.first().is_some_and(|&v| v == 13.0), "boom");
            vec![0.0; batch * 2]
        }
    }

    /// Model whose output violates the `batch · output_len()` contract.
    struct ShortChanger;

    impl BatchModel for ShortChanger {
        fn input_kind(&self) -> InputKind {
            InputKind::Pixels
        }

        fn input_len(&self) -> usize {
            4
        }

        fn output_len(&self) -> usize {
            8
        }

        fn set_quant(&mut self, _cfg: QuantConfig) {}

        fn forward_batch(&mut self, _input: ZooInput<'_>, _batch: usize) -> Vec<f32> {
            vec![1.0; 3] // never batch · 8
        }
    }

    #[test]
    fn model_panic_answers_requests_and_spares_other_models() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = Server::new(ServerConfig::default());
        server.register("grenade", Box::new(Grenade));
        server.register(
            "dense",
            Box::new(DenseGemm::new(&mut rng, 32, 16, QuantConfig::fp32())),
        );
        let handle = server.start();

        // Healthy request first: the model works.
        let ok = handle
            .infer("grenade", mx6(), RequestInput::Pixels(vec![0.0; 4]))
            .unwrap();
        assert_eq!(ok, vec![0.0, 0.0]);

        // Trigger the panic: the client gets an error, not a hang, and the
        // worker thread survives.
        let err = handle
            .infer(
                "grenade",
                mx6(),
                RequestInput::Pixels(vec![13.0, 0.0, 0.0, 0.0]),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::ModelPanicked {
                model: "grenade".into()
            }
        );

        // The panic poisoned the model: later requests fail fast with the
        // same error instead of touching half-updated state.
        let err = handle
            .infer("grenade", mx6(), RequestInput::Pixels(vec![0.0; 4]))
            .unwrap_err();
        assert!(matches!(err, ServeError::ModelPanicked { .. }));

        // Fault isolation: the other model still serves on the same worker.
        let y = handle
            .infer("dense", mx6(), RequestInput::Pixels(row(1)))
            .unwrap();
        assert_eq!(y.len(), 16);

        // Every request above was answered and counted.
        assert_eq!(handle.stats().completed, 4);
        assert_eq!(handle.stats().queue_depth, 0);
        handle.shutdown();
    }

    #[test]
    fn bad_output_length_is_an_error_not_a_worker_crash() {
        let mut server = Server::new(ServerConfig::default());
        server.register("short", Box::new(ShortChanger));
        let handle = server.start();
        let err = handle
            .infer("short", mx6(), RequestInput::Pixels(vec![0.0; 4]))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::BadModelOutput {
                model: "short".into(),
                expected: 8,
                got: 3,
            }
        );
        // The worker survives to answer another (still broken) request.
        let err = handle
            .infer("short", mx6(), RequestInput::Pixels(vec![0.0; 4]))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadModelOutput { .. }));
        handle.shutdown();
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut server = Server::new(ServerConfig::default());
        server.register(
            "m",
            Box::new(DenseGemm::new(&mut rng, 8, 4, QuantConfig::fp32())),
        );
        server.register(
            "m",
            Box::new(DenseGemm::new(&mut rng, 8, 4, QuantConfig::fp32())),
        );
    }
}
