//! # mx-serve — sharded, admission-controlled batched inference over shared
//! weight planes
//!
//! The paper's systems argument is that shared-microexponent formats make
//! direct-cast inference cheap enough to *serve*: weights lower once to
//! shift-aligned integer code planes and every subsequent request rides the
//! integer datapath. This crate turns that into a server built for
//! multi-model, mixed-length, overloaded traffic:
//!
//! - a **sharded registry** of zoo models
//!   ([`mx_models::zoo::BatchModel`]): each model lives on exactly one
//!   shard (round-robin by registration order), and each shard owns its
//!   queue, dispatcher, and worker pool — so a model's prepacked weight
//!   planes stay hot on the workers that serve it, and one model's
//!   overload cannot starve another shard;
//! - a typed **[`Request`] builder** carrying the payload plus per-request
//!   knobs (quant format, deadline, priority), validated and routed to its
//!   model's shard at [`ServerHandle::submit`];
//! - **admission control** ([`AdmissionConfig`]) in front of each shard
//!   queue: a bounded queue that blocks submitters (backpressure) or sheds
//!   with a typed [`ServeError::Overloaded`], plus a latency-SLO check
//!   driven by observed per-bucket service time — shed and expired
//!   requests are always *answered*, never silently dropped;
//! - **length bucketing** for variable-length models: a request of `L`
//!   elements is padded up to the smallest configured bucket edge ≥ `L`,
//!   so same-bucket requests coalesce into one fixed-shape batch GEMM; the
//!   response is the padded run's output sliced back to the request's own
//!   length. Fixed-length models are the degenerate single-bucket case;
//! - a per-shard **batcher** that drains the shard queue and coalesces
//!   same-model / same-config / same-bucket requests into one
//!   `forward_batch` call of at most `max_batch` requests — the
//!   weight-side `PackedOperand` is fetched from `mx-nn`'s
//!   generation-keyed, per-format plane cache, so it is lowered **once**
//!   and shared by every request in every batch.
//!
//! Batching is **semantically invisible**: every tensor op on the zoo's
//! inference path is row- (or sequence-) independent, so a request's
//! response is bit-identical to running the same (bucket-padded) request
//! alone — across formats, batch sizes, shard counts, ragged final
//! batches, and zero-padded batches (the workspace's `serve_end_to_end`
//! suite asserts this bit for bit). What batching buys is throughput:
//! B-side code traffic, kernel dispatch, and the A-side pack's per-call
//! overhead amortize over the coalesced rows (measured in the
//! `serving_throughput` bench and the multi-tenant `serve_loadgen`
//! simulator).
//!
//! ## Example
//!
//! ```
//! use mx_serve::{Request, RequestInput, Server, ServerConfig};
//! use mx_models::zoo::DenseGemm;
//! use mx_nn::{QuantConfig, TensorFormat};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut server = Server::new(ServerConfig::default().shards(1).max_batch(8));
//! server.register(
//!     "ffn",
//!     Box::new(DenseGemm::new(&mut rng, 64, 128, QuantConfig::fp32())),
//! );
//! let handle = server.start().unwrap();
//! let cfg = QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6);
//! let y = handle
//!     .infer(Request::new("ffn", RequestInput::Pixels(vec![0.5; 64])).quant(cfg))
//!     .unwrap();
//! assert_eq!(y.len(), 128);
//! assert_eq!(handle.stats().completed, 1);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod config;
mod request;
mod stats;

pub use config::{AdmissionConfig, ConfigError, ServerConfig};
pub use request::{Priority, Request, RequestInput};
pub use stats::ServeStats;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use mx_models::zoo::{BatchModel, InputKind, ZooInput};
use mx_nn::plan::{CompiledPlan, PlanArena, PlanInput};
use mx_nn::qflow::QuantConfig;
use stats::StatsInner;
use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a request was rejected or lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No registered model has this name.
    UnknownModel(String),
    /// The payload kind does not match the model's input kind.
    WrongInputKind {
        /// Model name the request addressed.
        model: String,
        /// The kind the model expects.
        expected: InputKind,
        /// The kind the request carried.
        got: InputKind,
    },
    /// The payload length is outside the model's contract: fixed-length
    /// models take exactly `expected` elements, variable-length models
    /// `1..=expected`.
    WrongInputLen {
        /// Model name the request addressed.
        model: String,
        /// Elements per request the model serves (the maximum, for
        /// variable-length models).
        expected: usize,
        /// Elements the request carried.
        got: usize,
    },
    /// Admission control refused the request: the shard's queue was full
    /// under a shedding policy, or the latency-SLO estimate predicted the
    /// request could not be answered in time. Shedding is always typed —
    /// the caller gets this error, never silence.
    Overloaded {
        /// Model name whose shard refused the request.
        model: String,
    },
    /// The request's deadline passed before its batch executed (checked at
    /// submit, at dispatch, and just before execution).
    DeadlineExceeded {
        /// Model name the request addressed.
        model: String,
    },
    /// The model panicked while executing a batch (this request's or an
    /// earlier one that poisoned the model). The worker survives; other
    /// models keep serving.
    ModelPanicked {
        /// Model name whose `forward_batch` (or quant switch) panicked.
        model: String,
    },
    /// The model returned a buffer whose length is not
    /// `batch · output_len(len)`, so per-request rows cannot be sliced
    /// out.
    BadModelOutput {
        /// Model name that violated its output contract.
        model: String,
        /// Elements the contract promised (`batch · output_len(len)`).
        expected: usize,
        /// Elements the model actually returned.
        got: usize,
    },
    /// The server shut down before answering.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::WrongInputKind {
                model,
                expected,
                got,
            } => write!(f, "model {model:?} expects {expected:?} input, got {got:?}"),
            ServeError::WrongInputLen {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model:?} serves up to {expected} elements per request, got {got}"
            ),
            ServeError::Overloaded { model } => {
                write!(f, "model {model:?}'s shard shed the request (overloaded)")
            }
            ServeError::DeadlineExceeded { model } => {
                write!(f, "request to model {model:?} expired before execution")
            }
            ServeError::ModelPanicked { model } => {
                write!(f, "model {model:?} panicked while executing a batch")
            }
            ServeError::BadModelOutput {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model:?} returned {got} elements, contract promised {expected}"
            ),
            ServeError::Disconnected => write!(f, "server shut down before responding"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-request outcome: the flattened response row, or a rejection.
pub type ServeResult = Result<Vec<f32>, ServeError>;

/// One admitted request in flight through a shard queue. The payload is
/// already padded to `len` (its bucket edge); `keep` is how much of the
/// per-request output row belongs to the caller.
struct Job {
    model: usize,
    cfg: QuantConfig,
    input: RequestInput,
    len: usize,
    out_len: usize,
    keep: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    resp: Sender<ServeResult>,
}

/// A coalesced group of same-model / same-config / same-bucket jobs.
struct Batch {
    model: usize,
    cfg: QuantConfig,
    len: usize,
    out_len: usize,
    jobs: Vec<Job>,
}

/// Whether workers execute batches through compiled plans (the `MX_PLAN`
/// knob; default on — `0` / `off` / `false` falls back to the dynamic
/// layer-walk everywhere, which is bit-identical but repays per-batch
/// planning, gating, and allocation).
fn plan_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            mx_core::knobs::raw("MX_PLAN").as_deref(),
            Some("0" | "off" | "false")
        )
    })
}

/// Soft cap on cached plans per model: `formats × buckets` in practice is
/// far below this; the cap only bounds a pathological client that cycles
/// through many distinct configs.
const PLAN_CACHE_CAP: usize = 32;

thread_local! {
    /// Per-worker plan scratch arena, reused across batches so steady-state
    /// plan execution performs no allocation beyond the arena's first
    /// growth to a model's high-water mark.
    static PLAN_ARENA: RefCell<PlanArena> = RefCell::new(PlanArena::new());
}

/// State of one plan-cache slot. `Failed` is negative caching: a key the
/// model cannot lower (unsupported format pair, data-dependent routing) is
/// probed once and then served dynamically without re-planning per batch.
enum PlanState {
    /// A compiled plan plus the weight-generation token it was built at.
    Ready { plan: Arc<CompiledPlan>, token: u64 },
    /// Plan compilation failed for this key; use the dynamic path.
    Failed,
}

/// One cached plan keyed by `(QuantConfig, bucket len, padded batch)`.
struct PlanSlot {
    cfg: QuantConfig,
    len: usize,
    eff: usize,
    state: PlanState,
}

/// A registered model plus the request contract captured at
/// [`Server::start`].
struct ModelEntry {
    name: String,
    kind: InputKind,
    input_len: usize,
    variable: bool,
    shard: usize,
    /// Bucket edges this model serves, ascending; the last is always the
    /// native `input_len`. A request of length `L` pads to the smallest
    /// edge ≥ `L`. Fixed-length models have the single native edge.
    admitted: Vec<usize>,
    /// `out_for[l]` = the model's `output_len(l)` for every acceptable
    /// request length, captured once so the submit path never locks the
    /// model.
    out_for: Vec<usize>,
    model: Mutex<Box<dyn BatchModel>>,
    /// Compiled-plan cache: one slot per `(cfg, bucket, padded batch)` key
    /// this model has served. Stale slots (weight-generation token moved)
    /// are evicted and recompiled on the next batch.
    plans: Mutex<Vec<PlanSlot>>,
}

/// A server under construction: register models, then [`Server::start`].
pub struct Server {
    config: ServerConfig,
    registry: Vec<(String, Box<dyn BatchModel>)>,
}

impl Server {
    /// Creates an empty server with the given tuning. The configuration is
    /// validated at [`Server::start`], not here.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            config,
            registry: Vec::new(),
        }
    }

    /// Registers `model` under `name`. The request contract (input kind,
    /// per-request lengths, bucket edges) is captured at [`Server::start`]
    /// and validated at submit time. Models are assigned to shards
    /// round-robin in registration order.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn register(&mut self, name: &str, model: Box<dyn BatchModel>) -> &mut Self {
        // audit:allow(serve-panic): construction-time contract, not the
        // request path — duplicate names are a deployment bug.
        assert!(
            self.registry.iter().all(|(n, _)| n != name),
            "model {name:?} already registered"
        );
        self.registry.push((name.to_string(), model));
        self
    }

    /// Validates the configuration, captures every model's serving
    /// contract, and starts per-shard dispatcher and worker threads,
    /// returning the client handle. Dropping (or
    /// [`ServerHandle::shutdown`]ting) the handle drains in-flight
    /// requests and joins every thread.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] when the configuration is
    /// invalid; no thread is spawned in that case.
    pub fn start(self) -> Result<ServerHandle, ConfigError> {
        self.config.validate()?;
        let shards = self.config.shards;
        let entries: Vec<ModelEntry> = self
            .registry
            .into_iter()
            .enumerate()
            .map(|(i, (name, model))| {
                let input_len = model.input_len();
                let variable = model.variable_len();
                let admitted = if variable {
                    let mut edges: Vec<usize> = self
                        .config
                        .buckets
                        .iter()
                        .copied()
                        .filter(|&b| b < input_len)
                        .collect();
                    edges.push(input_len);
                    edges
                } else {
                    vec![input_len]
                };
                let out_for = (0..=input_len).map(|l| model.output_len(l)).collect();
                ModelEntry {
                    name,
                    kind: model.input_kind(),
                    input_len,
                    variable,
                    shard: i % shards,
                    admitted,
                    out_for,
                    model: Mutex::new(model),
                    plans: Mutex::new(Vec::new()),
                }
            })
            .collect();
        let registry = Arc::new(entries);
        let stats = Arc::new(StatsInner::new(self.config.max_batch, shards));
        let mut job_txs = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards * (self.config.workers + 1));
        for shard in 0..shards {
            let (job_tx, job_rx) = match self.config.admission.queue_capacity {
                Some(cap) => bounded(cap),
                None => unbounded(),
            };
            // The batch channel is bounded at the worker count so a busy
            // shard stalls its dispatcher instead of draining the job
            // queue into an invisible unbounded buffer — that is what lets
            // a bounded job queue actually exert backpressure on (or shed)
            // submitters.
            let (batch_tx, batch_rx) = bounded::<Batch>(self.config.workers);
            job_txs.push(job_tx);
            let max_batch = self.config.max_batch;
            let dispatch_registry = registry.clone();
            let dispatch_stats = stats.clone();
            threads.push(std::thread::spawn(move || {
                dispatch_loop(
                    shard,
                    job_rx,
                    batch_tx,
                    max_batch,
                    &dispatch_registry,
                    &dispatch_stats,
                );
            }));
            for _ in 0..self.config.workers {
                let batch_rx = batch_rx.clone();
                let registry = registry.clone();
                let stats = stats.clone();
                let config = self.config.clone();
                threads.push(std::thread::spawn(move || {
                    while let Ok(batch) = batch_rx.recv() {
                        execute_batch(shard, batch, &registry, &stats, &config);
                    }
                }));
            }
        }
        Ok(ServerHandle {
            job_txs: Some(job_txs),
            config: self.config,
            registry,
            stats,
            threads,
        })
    }
}

/// One shard's batcher: drains whatever is queued, answers expired
/// requests, groups the rest by `(model, QuantConfig, bucket len)` in
/// arrival order, and emits batches of at most `max_batch` requests onto
/// the shard's bounded batch channel. Every drained job is flushed each
/// round — partial groups become ragged batches rather than waiting for
/// stragglers, so a burst of synchronous clients can never deadlock behind
/// a half-full batch.
fn dispatch_loop(
    shard: usize,
    job_rx: Receiver<Job>,
    batch_tx: Sender<Batch>,
    max_batch: usize,
    registry: &[ModelEntry],
    stats: &StatsInner,
) {
    while let Ok(first) = job_rx.recv() {
        let mut drained = vec![first];
        let mut lingered = false;
        loop {
            while drained.len() < 4 * max_batch {
                match job_rx.try_recv() {
                    Ok(job) => drained.push(job),
                    Err(_) => break,
                }
            }
            if drained.len() >= max_batch || lingered {
                break;
            }
            // Micro-batch linger: one scheduler slot for the producers to
            // finish their burst. Without it, a single-core box ping-pongs —
            // every submit wakes the dispatcher, which forwards a batch of
            // one before the client can enqueue the next request. One yield
            // bounds the added latency at a context switch while letting a
            // burst coalesce.
            lingered = true;
            std::thread::yield_now();
        }
        let now = Instant::now();
        let mut groups: Vec<Batch> = Vec::new();
        for job in drained {
            if job.deadline.is_some_and(|d| now >= d) {
                expire_job(shard, job, registry, stats);
                continue;
            }
            match groups
                .iter_mut()
                .find(|b| b.model == job.model && b.cfg == job.cfg && b.len == job.len)
            {
                Some(b) => b.jobs.push(job),
                None => groups.push(Batch {
                    model: job.model,
                    cfg: job.cfg,
                    len: job.len,
                    out_len: job.out_len,
                    jobs: vec![job],
                }),
            }
        }
        for group in groups {
            let Batch {
                model,
                cfg,
                len,
                out_len,
                jobs,
            } = group;
            let mut chunk = Vec::with_capacity(max_batch.min(jobs.len()));
            for job in jobs {
                chunk.push(job);
                if chunk.len() == max_batch
                    && batch_tx
                        .send(Batch {
                            model,
                            cfg,
                            len,
                            out_len,
                            jobs: std::mem::take(&mut chunk),
                        })
                        .is_err()
                {
                    return;
                }
            }
            if !chunk.is_empty()
                && batch_tx
                    .send(Batch {
                        model,
                        cfg,
                        len,
                        out_len,
                        jobs: chunk,
                    })
                    .is_err()
            {
                return;
            }
        }
    }
    // job_tx dropped (shutdown): queue drained, dropping batch_tx ends the
    // workers once they finish what is in flight.
}

/// Answers one expired job with [`ServeError::DeadlineExceeded`] and
/// retires it from the shard's depth — expiry is a typed answer, never a
/// silent drop.
fn expire_job(shard: usize, job: Job, registry: &[ModelEntry], stats: &StatsInner) {
    stats.retired(shard, 1);
    stats.record_expired(1);
    let model = registry
        .get(job.model)
        .map_or_else(String::new, |e| e.name.clone());
    let _ = job.resp.send(Err(ServeError::DeadlineExceeded { model }));
}

/// Runs one coalesced batch on its model and answers every member request.
///
/// Requests whose deadline passed while the batch waited for a worker are
/// answered with [`ServeError::DeadlineExceeded`] and dropped from the
/// batch first. Model failures — a poisoned mutex from an earlier panic, a
/// panic during this batch, an output buffer that violates the length
/// contract — are answered as [`ServeError`]s on every member request. The
/// worker thread itself never unwinds, so one misbehaving model cannot
/// take down the server: other models (and this one's error reporting)
/// keep serving.
fn execute_batch(
    shard: usize,
    mut batch: Batch,
    registry: &[ModelEntry],
    stats: &StatsInner,
    config: &ServerConfig,
) {
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = std::mem::take(&mut batch.jobs)
        .into_iter()
        .partition(|job| job.deadline.is_none_or(|d| now < d));
    batch.jobs = live;
    for job in expired {
        expire_job(shard, job, registry, stats);
    }
    let n = batch.jobs.len();
    if n == 0 {
        return;
    }
    let started = Instant::now();
    let result = run_batch(&batch, registry, stats, config);
    let service = started.elapsed();
    // Publish telemetry *before* answering: a synchronous client that just
    // got its response must see itself counted in the next snapshot.
    // Failed batches still count — the requests were accepted and answered.
    let latencies: Vec<_> = batch.jobs.iter().map(|j| j.enqueued.elapsed()).collect();
    stats.retired(shard, n);
    stats.record_batch(shard, batch.model, batch.len, n, &latencies, service);
    match result {
        Ok(rows) => {
            for (job, mut row) in batch.jobs.into_iter().zip(rows) {
                // Slice the padded run's output back to the request's own
                // length before answering.
                row.truncate(job.keep);
                // A client that dropped its Pending receiver discards the
                // row.
                let _ = job.resp.send(Ok(row));
            }
        }
        Err(err) => {
            for job in batch.jobs {
                let _ = job.resp.send(Err(err.clone()));
            }
        }
    }
}

/// Executes the model call for one batch, returning per-request output rows
/// (at the bucket's full `out_len`) or the error every member request
/// should be answered with.
fn run_batch(
    batch: &Batch,
    registry: &[ModelEntry],
    stats: &StatsInner,
    config: &ServerConfig,
) -> Result<Vec<Vec<f32>>, ServeError> {
    let entry = registry.get(batch.model).ok_or(ServeError::Disconnected)?; // index minted at submit; defensive
    let n = batch.jobs.len();
    // Padding keeps the executed GEMM at the full batch shape; the padded
    // rows are zero requests whose outputs are sliced away below.
    let eff = if config.pad_batches {
        config.max_batch
    } else {
        n
    };
    let per_in = batch.len;
    // Concatenate the (submit-validated, bucket-padded) payloads. A kind
    // mismatch here would be an internal bug; report it as the kind error
    // rather than killing the worker.
    let out = match entry.kind {
        InputKind::Tokens => {
            let mut buf = Vec::with_capacity(eff * per_in);
            for job in &batch.jobs {
                let RequestInput::Tokens(t) = &job.input else {
                    return Err(ServeError::WrongInputKind {
                        model: entry.name.clone(),
                        expected: InputKind::Tokens,
                        got: job.input.kind(),
                    });
                };
                buf.extend_from_slice(t);
            }
            buf.resize(eff * per_in, 0);
            forward_guarded(
                entry,
                batch.cfg,
                ZooInput::Tokens(&buf),
                batch.len,
                eff,
                stats,
            )?
        }
        InputKind::Pixels => {
            let mut buf = Vec::with_capacity(eff * per_in);
            for job in &batch.jobs {
                let RequestInput::Pixels(p) = &job.input else {
                    return Err(ServeError::WrongInputKind {
                        model: entry.name.clone(),
                        expected: InputKind::Pixels,
                        got: job.input.kind(),
                    });
                };
                buf.extend_from_slice(p);
            }
            buf.resize(eff * per_in, 0.0);
            forward_guarded(
                entry,
                batch.cfg,
                ZooInput::Pixels(&buf),
                batch.len,
                eff,
                stats,
            )?
        }
    };
    let per_out = batch.out_len;
    if out.len() != eff * per_out {
        return Err(ServeError::BadModelOutput {
            model: entry.name.clone(),
            expected: eff * per_out,
            got: out.len(),
        });
    }
    if per_out == 0 {
        // Zero-width outputs: every row is empty; `chunks(0)` would panic.
        return Ok(vec![Vec::new(); n]);
    }
    Ok(out.chunks(per_out).take(n).map(<[f32]>::to_vec).collect())
}

/// Locks the model and runs `set_quant` + the planned (or dynamic)
/// forward with a panic guard. A panic inside the model poisons its mutex
/// (the guard is moved into the unwinding closure and dropped mid-panic),
/// so later batches for the same model fail fast with
/// [`ServeError::ModelPanicked`] while the worker — and every other model
/// — keeps running.
fn forward_guarded(
    entry: &ModelEntry,
    cfg: QuantConfig,
    input: ZooInput<'_>,
    len: usize,
    eff: usize,
    stats: &StatsInner,
) -> Result<Vec<f32>, ServeError> {
    let Ok(guard) = entry.model.lock() else {
        return Err(ServeError::ModelPanicked {
            model: entry.name.clone(),
        });
    };
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut model = guard;
        // Per-request format selection = direct cast on the shared model.
        // Weights are untouched, so each format's cached weight plane stays
        // warm across config switches.
        model.set_quant(cfg);
        if let Some(out) = planned_forward(entry, &mut **model, cfg, &input, len, eff, stats) {
            return out;
        }
        model.forward_batch(input, eff)
    }))
    .map_err(|_| ServeError::ModelPanicked {
        model: entry.name.clone(),
    })
}

/// Executes the batch through the model's compiled-plan cache. `None`
/// means "take the dynamic layer-walk" — the knob is off, the key is
/// unplannable, or the plan failed at execute time; correctness never
/// depends on the planner, only steady-state overhead does.
///
/// Called with the model mutex held, so the weight-generation token, the
/// cache lookup, and any recompile are atomic with respect to other
/// batches of the same model.
#[allow(clippy::too_many_arguments)] // mirrors forward_guarded's signature
fn planned_forward(
    entry: &ModelEntry,
    model: &mut dyn BatchModel,
    cfg: QuantConfig,
    input: &ZooInput<'_>,
    len: usize,
    eff: usize,
    stats: &StatsInner,
) -> Option<Vec<f32>> {
    if !plan_enabled() {
        return None;
    }
    let token = model.plan_token();
    let mut plans = entry.plans.lock().unwrap_or_else(|p| p.into_inner());
    // Evict a slot whose weights moved since compilation (an optimizer
    // step, a hot-swap): the recompile below picks up the new weights.
    if let Some(i) = plans
        .iter()
        .position(|s| s.cfg == cfg && s.len == len && s.eff == eff)
    {
        let stale = matches!(
            plans.get(i).map(|s| &s.state),
            Some(PlanState::Ready { token: t, .. }) if *t != token
        );
        if stale {
            plans.swap_remove(i);
        }
    }
    let plan = match plans
        .iter()
        .find(|s| s.cfg == cfg && s.len == len && s.eff == eff)
    {
        Some(slot) => match &slot.state {
            PlanState::Ready { plan, .. } => {
                stats.record_plan_hit();
                Arc::clone(plan)
            }
            PlanState::Failed => return None,
        },
        None => {
            if plans.len() >= PLAN_CACHE_CAP {
                plans.remove(0); // oldest-first soft eviction
            }
            match model.compile_plan(cfg, eff, len) {
                Ok(plan) => {
                    let plan = Arc::new(plan);
                    plans.push(PlanSlot {
                        cfg,
                        len,
                        eff,
                        state: PlanState::Ready {
                            plan: Arc::clone(&plan),
                            token,
                        },
                    });
                    plan
                }
                Err(_) => {
                    plans.push(PlanSlot {
                        cfg,
                        len,
                        eff,
                        state: PlanState::Failed,
                    });
                    return None;
                }
            }
        }
    };
    drop(plans);
    let pin = match input {
        ZooInput::Tokens(t) => PlanInput::Tokens(t),
        ZooInput::Pixels(p) => PlanInput::Pixels(p),
    };
    PLAN_ARENA.with(|arena| plan.execute(pin, &mut arena.borrow_mut()).ok())
}

/// Client handle to a running server: submit requests (from any thread —
/// submission takes `&self`), read stats, shut down.
pub struct ServerHandle {
    job_txs: Option<Vec<Sender<Job>>>,
    config: ServerConfig,
    registry: Arc<Vec<ModelEntry>>,
    stats: Arc<StatsInner>,
    threads: Vec<JoinHandle<()>>,
}

/// A response that has not arrived yet (returned by
/// [`ServerHandle::submit`]).
pub struct Pending {
    rx: Receiver<ServeResult>,
}

impl Pending {
    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResult {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::Disconnected),
        }
    }
}

impl ServerHandle {
    /// Validates `req`, runs it through admission control, and enqueues it
    /// on its model's shard, returning a [`Pending`] response without
    /// blocking on execution. Submitting several requests before waiting
    /// is how a single client thread gets them coalesced into one batch.
    ///
    /// Under a bounded shard queue this call *blocks* when the queue is
    /// full (backpressure) unless the admission policy sheds, in which
    /// case it returns [`ServeError::Overloaded`] immediately.
    pub fn submit(&self, req: Request) -> Result<Pending, ServeError> {
        let Request {
            model,
            mut input,
            cfg,
            deadline,
            priority,
        } = req;
        let (id, entry) = self
            .registry
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == model)
            .ok_or_else(|| ServeError::UnknownModel(model.clone()))?;
        if input.kind() != entry.kind {
            return Err(ServeError::WrongInputKind {
                model,
                expected: entry.kind,
                got: input.kind(),
            });
        }
        let got = input.len();
        let acceptable = if entry.variable {
            (1..=entry.input_len).contains(&got)
        } else {
            got == entry.input_len
        };
        if !acceptable {
            return Err(ServeError::WrongInputLen {
                model,
                expected: entry.input_len,
                got,
            });
        }
        // Bucket: the smallest admitted edge that fits the request. The
        // native length is always the final edge, so the search cannot
        // miss; the fallback is defensive.
        let len = entry
            .admitted
            .iter()
            .copied()
            .find(|&edge| edge >= got)
            .unwrap_or(entry.input_len);
        let out_len = entry.out_for.get(len).copied().unwrap_or(0);
        let keep = entry.out_for.get(got).copied().unwrap_or(out_len);
        let now = Instant::now();
        let deadline = deadline.map(|budget| now + budget);
        if deadline.is_some_and(|d| now >= d) {
            self.stats.record_expired(1);
            return Err(ServeError::DeadlineExceeded { model });
        }
        // Latency-SLO admission: shed when the shard's observed service
        // times predict this request cannot be answered within its
        // priority's share of the SLO. High priority bypasses the
        // estimate; a cold shard (no observations) predicts zero and
        // admits.
        if let Some(slo) = self.config.admission.slo {
            if let Some(budget) = priority.slo_budget(slo) {
                let budget_us = budget.as_micros().min(u128::from(u64::MAX)) as u64;
                if self.stats.estimate_wait_us(entry.shard, id, len) > budget_us {
                    self.stats.record_shed();
                    return Err(ServeError::Overloaded { model });
                }
            }
        }
        input.pad_to(len);
        // `job_txs` is cleared only by shutdown, which takes the handle by
        // value — but answer `Disconnected` rather than panicking if that
        // invariant ever breaks.
        let tx = self
            .job_txs
            .as_ref()
            .and_then(|txs| txs.get(entry.shard))
            .ok_or(ServeError::Disconnected)?;
        let (resp, rx) = unbounded();
        let job = Job {
            model: id,
            cfg,
            input,
            len,
            out_len,
            keep,
            deadline,
            enqueued: now,
            resp,
        };
        self.stats.admitted(entry.shard, 1);
        if self.config.admission.shed_on_full {
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.stats.retired(entry.shard, 1);
                    self.stats.record_shed();
                    return Err(ServeError::Overloaded { model });
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.stats.retired(entry.shard, 1);
                    return Err(ServeError::Disconnected);
                }
            }
        } else if tx.send(job).is_err() {
            self.stats.retired(entry.shard, 1);
            return Err(ServeError::Disconnected);
        }
        Ok(Pending { rx })
    }

    /// Synchronous inference: submit and block until the response arrives.
    pub fn infer(&self, req: Request) -> ServeResult {
        self.submit(req)?.wait()
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Registered model names, in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.registry.iter().map(|e| e.name.clone()).collect()
    }

    /// The shard a model's requests are routed to, `None` when unknown.
    pub fn shard_of(&self, model: &str) -> Option<usize> {
        self.registry
            .iter()
            .find(|e| e.name == model)
            .map(|e| e.shard)
    }

    /// Graceful shutdown: stops accepting requests, drains everything in
    /// flight, and joins every shard's dispatcher and workers. (Dropping
    /// the handle does the same.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.job_txs.take(); // dispatchers see the disconnect after draining
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_models::zoo::DenseGemm;
    use mx_nn::TensorFormat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mx6() -> QuantConfig {
        QuantConfig::weights_activations(TensorFormat::MX6, TensorFormat::MX6)
    }

    fn dense_server(workers: usize, max_batch: usize) -> ServerHandle {
        let mut rng = StdRng::seed_from_u64(3);
        let mut server = Server::new(
            ServerConfig::default()
                .workers(workers)
                .max_batch(max_batch),
        );
        server.register(
            "dense",
            Box::new(DenseGemm::new(&mut rng, 32, 16, QuantConfig::fp32())),
        );
        server.start().unwrap()
    }

    fn row(salt: usize) -> Vec<f32> {
        (0..32).map(|i| ((i + salt) as f32 * 0.19).sin()).collect()
    }

    fn dense_req(salt: usize) -> Request {
        Request::new("dense", RequestInput::Pixels(row(salt))).quant(mx6())
    }

    #[test]
    fn sync_inference_round_trip() {
        let handle = dense_server(1, 4);
        let y = handle.infer(dense_req(0)).unwrap();
        assert_eq!(y.len(), 16);
        let again = handle.infer(dense_req(0)).unwrap();
        assert_eq!(y, again, "same request, same bits");
        let stats = handle.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(handle.model_names(), vec!["dense".to_string()]);
        assert_eq!(handle.shard_of("dense"), Some(0));
        assert_eq!(handle.shard_of("nope"), None);
        handle.shutdown();
    }

    #[test]
    fn submit_validates_before_enqueue() {
        let handle = dense_server(1, 4);
        assert_eq!(
            handle
                .infer(Request::new("nope", RequestInput::Pixels(row(0))))
                .unwrap_err(),
            ServeError::UnknownModel("nope".into())
        );
        assert!(matches!(
            handle
                .infer(Request::new("dense", RequestInput::Tokens(vec![0; 32])).quant(mx6()))
                .unwrap_err(),
            ServeError::WrongInputKind { .. }
        ));
        assert!(matches!(
            handle
                .infer(Request::new("dense", RequestInput::Pixels(vec![0.0; 7])).quant(mx6()))
                .unwrap_err(),
            ServeError::WrongInputLen {
                expected: 32,
                got: 7,
                ..
            }
        ));
        // Rejections never count as in-flight work.
        assert_eq!(handle.stats().queue_depth, 0);
        assert_eq!(handle.stats().completed, 0);
    }

    #[test]
    fn invalid_config_is_a_typed_error_at_start() {
        let server = Server::new(ServerConfig::default().workers(0));
        match server.start() {
            Err(e) => assert_eq!(e, ConfigError::ZeroWorkers),
            Ok(_) => panic!("zero workers must not start"),
        }
        let server = Server::new(ServerConfig::default().buckets([8, 4]));
        match server.start() {
            Err(e) => assert_eq!(e, ConfigError::UnsortedBuckets { index: 1 }),
            Ok(_) => panic!("unsorted buckets must not start"),
        }
    }

    #[test]
    fn burst_submission_coalesces_and_matches_serial() {
        let handle = dense_server(1, 8);
        // Serial references first (batches of 1).
        let want: Vec<Vec<f32>> = (0..12)
            .map(|i| handle.infer(dense_req(i)).unwrap())
            .collect();
        // Burst: submit all, then wait — the dispatcher coalesces.
        let pending: Vec<Pending> = (0..12)
            .map(|i| handle.submit(dense_req(i)).unwrap())
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap(), want[i], "request {i}");
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 24);
        assert_eq!(
            stats.batch_histogram.iter().sum::<u64>(),
            stats.batches,
            "histogram covers every batch"
        );
        assert!(stats.p50_latency_us <= stats.p99_latency_us);
        assert!(stats.p99_latency_us <= stats.p999_latency_us);
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_and_drop_is_idempotent() {
        let handle = dense_server(2, 4);
        let p = handle.submit(dense_req(9)).unwrap();
        handle.shutdown(); // drains the in-flight request first
        assert_eq!(p.wait().unwrap().len(), 16);
    }

    /// Pixel model that panics when a request's first feature is the magic
    /// value, and otherwise echoes `input_len` zeros per request — the
    /// misbehaving-tenant stand-in for the fault-isolation tests.
    struct Grenade;

    impl BatchModel for Grenade {
        fn input_kind(&self) -> InputKind {
            InputKind::Pixels
        }

        fn input_len(&self) -> usize {
            4
        }

        fn output_len(&self, _len: usize) -> usize {
            2
        }

        fn set_quant(&mut self, _cfg: QuantConfig) {}

        fn forward_batch(&mut self, input: ZooInput<'_>, batch: usize) -> Vec<f32> {
            let ZooInput::Pixels(px) = input else {
                panic!("pixels expected")
            };
            assert!(!px.first().is_some_and(|&v| v == 13.0), "boom");
            vec![0.0; batch * 2]
        }
    }

    /// Model whose output violates the `batch · output_len(len)` contract.
    struct ShortChanger;

    impl BatchModel for ShortChanger {
        fn input_kind(&self) -> InputKind {
            InputKind::Pixels
        }

        fn input_len(&self) -> usize {
            4
        }

        fn output_len(&self, _len: usize) -> usize {
            8
        }

        fn set_quant(&mut self, _cfg: QuantConfig) {}

        fn forward_batch(&mut self, _input: ZooInput<'_>, _batch: usize) -> Vec<f32> {
            vec![1.0; 3] // never batch · 8
        }
    }

    #[test]
    fn model_panic_answers_requests_and_spares_other_models() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = Server::new(ServerConfig::default());
        server.register("grenade", Box::new(Grenade));
        server.register(
            "dense",
            Box::new(DenseGemm::new(&mut rng, 32, 16, QuantConfig::fp32())),
        );
        let handle = server.start().unwrap();

        let grenade = |px: Vec<f32>| Request::new("grenade", RequestInput::Pixels(px)).quant(mx6());

        // Healthy request first: the model works.
        let ok = handle.infer(grenade(vec![0.0; 4])).unwrap();
        assert_eq!(ok, vec![0.0, 0.0]);

        // Trigger the panic: the client gets an error, not a hang, and the
        // worker thread survives.
        let err = handle
            .infer(grenade(vec![13.0, 0.0, 0.0, 0.0]))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::ModelPanicked {
                model: "grenade".into()
            }
        );

        // The panic poisoned the model: later requests fail fast with the
        // same error instead of touching half-updated state.
        let err = handle.infer(grenade(vec![0.0; 4])).unwrap_err();
        assert!(matches!(err, ServeError::ModelPanicked { .. }));

        // Fault isolation: the other model still serves on the same worker.
        let y = handle.infer(dense_req(1)).unwrap();
        assert_eq!(y.len(), 16);

        // Every request above was answered and counted.
        assert_eq!(handle.stats().completed, 4);
        assert_eq!(handle.stats().queue_depth, 0);
        handle.shutdown();
    }

    #[test]
    fn bad_output_length_is_an_error_not_a_worker_crash() {
        let mut server = Server::new(ServerConfig::default());
        server.register("short", Box::new(ShortChanger));
        let handle = server.start().unwrap();
        let req = || Request::new("short", RequestInput::Pixels(vec![0.0; 4])).quant(mx6());
        let err = handle.infer(req()).unwrap_err();
        assert_eq!(
            err,
            ServeError::BadModelOutput {
                model: "short".into(),
                expected: 8,
                got: 3,
            }
        );
        // The worker survives to answer another (still broken) request.
        let err = handle.infer(req()).unwrap_err();
        assert!(matches!(err, ServeError::BadModelOutput { .. }));
        handle.shutdown();
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut server = Server::new(ServerConfig::default());
        server.register(
            "m",
            Box::new(DenseGemm::new(&mut rng, 8, 4, QuantConfig::fp32())),
        );
        server.register(
            "m",
            Box::new(DenseGemm::new(&mut rng, 8, 4, QuantConfig::fp32())),
        );
    }
}
