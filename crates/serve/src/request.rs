//! The typed client request: payload + per-request knobs behind a builder.

use mx_models::zoo::InputKind;
use mx_nn::qflow::QuantConfig;
use std::time::Duration;

/// An owned request payload (the borrowed twin is
/// [`mx_models::zoo::ZooInput`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RequestInput {
    /// Token ids, for [`InputKind::Tokens`] models.
    Tokens(Vec<usize>),
    /// Raw `f32` features, for [`InputKind::Pixels`] models.
    Pixels(Vec<f32>),
}

impl RequestInput {
    pub(crate) fn kind(&self) -> InputKind {
        match self {
            RequestInput::Tokens(_) => InputKind::Tokens,
            RequestInput::Pixels(_) => InputKind::Pixels,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            RequestInput::Tokens(t) => t.len(),
            RequestInput::Pixels(p) => p.len(),
        }
    }

    /// Pads the payload in place to `len` elements with zero tokens /
    /// features (the bucket-edge padding; padded outputs are sliced away
    /// before the response is returned).
    pub(crate) fn pad_to(&mut self, len: usize) {
        match self {
            RequestInput::Tokens(t) => t.resize(len, 0),
            RequestInput::Pixels(p) => p.resize(len, 0.0),
        }
    }
}

/// Admission priority: how much of the configured latency SLO a request is
/// allowed to consume before the server sheds it (no SLO configured — no
/// effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Never shed by the SLO estimate (still sheds when the shard queue is
    /// hard-full under [`crate::AdmissionConfig::shed_on_full`]).
    High,
    /// Admitted while the predicted wait fits the full SLO.
    #[default]
    Normal,
    /// Admitted only while the predicted wait fits *half* the SLO — the
    /// first traffic to shed as a shard saturates.
    Low,
}

impl Priority {
    /// The admission budget this priority gets out of the configured SLO;
    /// `None` bypasses the estimate entirely.
    pub(crate) fn slo_budget(self, slo: Duration) -> Option<Duration> {
        match self {
            Priority::High => None,
            Priority::Normal => Some(slo),
            Priority::Low => Some(slo / 2),
        }
    }
}

/// One inference request, built fluently and submitted through
/// [`crate::ServerHandle::submit`] / [`crate::ServerHandle::infer`].
///
/// Only the model name and payload are required; quantization defaults to
/// fp32 (no direct cast), no deadline, [`Priority::Normal`].
///
/// ```
/// use mx_serve::{Priority, Request, RequestInput};
/// use mx_nn::{QuantConfig, TensorFormat};
/// use std::time::Duration;
///
/// let req = Request::new("ffn", RequestInput::Pixels(vec![0.5; 64]))
///     .quant(QuantConfig::weights_activations(
///         TensorFormat::MX6,
///         TensorFormat::MX6,
///     ))
///     .deadline(Duration::from_millis(20))
///     .priority(Priority::Low);
/// # let _ = req;
/// ```
#[derive(Debug, Clone)]
pub struct Request {
    pub(crate) model: String,
    pub(crate) input: RequestInput,
    pub(crate) cfg: QuantConfig,
    pub(crate) deadline: Option<Duration>,
    pub(crate) priority: Priority,
}

impl Request {
    /// A request for `model` carrying `input`, with default knobs.
    pub fn new(model: impl Into<String>, input: RequestInput) -> Self {
        Request {
            model: model.into(),
            input,
            cfg: QuantConfig::fp32(),
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// Per-request format selection: the direct cast every tensor op in the
    /// model switches to for this request's batch.
    pub fn quant(mut self, cfg: QuantConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Latency deadline, measured from submission. A request that expires
    /// before execution is answered with
    /// [`crate::ServeError::DeadlineExceeded`] — checked at submit, at
    /// dispatch, and again just before the batch runs.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Admission priority (see [`Priority`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_fills_defaults_and_overrides() {
        let r = Request::new("m", RequestInput::Tokens(vec![1, 2, 3]));
        assert_eq!(r.model, "m");
        assert_eq!(r.cfg, QuantConfig::fp32());
        assert_eq!(r.deadline, None);
        assert_eq!(r.priority, Priority::Normal);

        let r = r
            .deadline(Duration::from_millis(5))
            .priority(Priority::High);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.priority, Priority::High);
    }

    #[test]
    fn priority_budgets_scale_the_slo() {
        let slo = Duration::from_millis(10);
        assert_eq!(Priority::High.slo_budget(slo), None);
        assert_eq!(Priority::Normal.slo_budget(slo), Some(slo));
        assert_eq!(Priority::Low.slo_budget(slo), Some(slo / 2));
    }

    #[test]
    fn pad_to_extends_with_zeros() {
        let mut t = RequestInput::Tokens(vec![7, 8]);
        t.pad_to(4);
        assert_eq!(t, RequestInput::Tokens(vec![7, 8, 0, 0]));
        let mut p = RequestInput::Pixels(vec![1.5]);
        p.pad_to(3);
        assert_eq!(p, RequestInput::Pixels(vec![1.5, 0.0, 0.0]));
    }
}
