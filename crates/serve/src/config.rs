//! Server tuning: a validating [`ServerConfig`] builder with admission
//! knobs grouped in [`AdmissionConfig`], checked at [`crate::Server::start`]
//! into a typed [`ConfigError`] instead of misbehaving at runtime.

use std::fmt;
use std::time::Duration;

/// Why a [`ServerConfig`] was rejected at [`crate::Server::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers` is zero — every shard needs at least one executor.
    ZeroWorkers,
    /// `shards` is zero — the registry needs at least one shard.
    ZeroShards,
    /// `max_batch` is zero — a batch must hold at least one request.
    ZeroMaxBatch,
    /// A sequence-length bucket edge is zero (a request always carries at
    /// least one element).
    ZeroBucket {
        /// Position of the offending edge in the configured list.
        index: usize,
    },
    /// Bucket edges are not strictly increasing (sorted and deduplicated).
    UnsortedBuckets {
        /// Position of the first edge that is ≤ its predecessor.
        index: usize,
    },
    /// The admission queue capacity is zero — a queue that can hold
    /// nothing rejects everything.
    ZeroQueueCapacity,
    /// The latency SLO is the zero duration — no request could ever meet
    /// it, so every submission would shed.
    ZeroSlo,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            ConfigError::ZeroBucket { index } => {
                write!(f, "bucket edge at index {index} is zero")
            }
            ConfigError::UnsortedBuckets { index } => write!(
                f,
                "bucket edges must be strictly increasing: edge at index {index} \
                 is not greater than its predecessor"
            ),
            ConfigError::ZeroQueueCapacity => {
                write!(f, "admission queue capacity must be at least 1")
            }
            ConfigError::ZeroSlo => write!(f, "latency SLO must be a positive duration"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Admission-control knobs: what stands between a submitted request and the
/// shard queue. The default admits everything (unbounded queue, no
/// shedding, no SLO) — the seed server's behavior.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    pub(crate) queue_capacity: Option<usize>,
    pub(crate) shed_on_full: bool,
    pub(crate) slo: Option<Duration>,
}

impl AdmissionConfig {
    /// An admit-everything policy (the default).
    pub fn new() -> Self {
        AdmissionConfig::default()
    }

    /// Bounds each shard's job queue at `cap` requests. Submitting past the
    /// bound blocks the client (backpressure) unless
    /// [`AdmissionConfig::shed_on_full`] turns the block into a typed
    /// [`crate::ServeError::Overloaded`] rejection.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// When the shard queue is full, reject with
    /// [`crate::ServeError::Overloaded`] instead of blocking the submitter.
    /// Shedding is always *typed* — a shed request is never silently
    /// dropped.
    pub fn shed_on_full(mut self, shed: bool) -> Self {
        self.shed_on_full = shed;
        self
    }

    /// Latency SLO for admission: a request is rejected with
    /// [`crate::ServeError::Overloaded`] when the shard's observed service
    /// times predict it cannot be answered within `slo`
    /// (priority-adjusted; see [`crate::Priority`]). Until the shard has
    /// observed any service time the estimate is zero, so a cold server
    /// admits everything.
    pub fn slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Server tuning knobs, built fluently and validated as a whole at
/// [`crate::Server::start`] — an invalid combination is a typed
/// [`ConfigError`] before any thread spawns, never a runtime surprise.
///
/// ```
/// use mx_serve::{AdmissionConfig, ServerConfig};
/// use std::time::Duration;
///
/// let cfg = ServerConfig::default()
///     .shards(2)
///     .workers(2)
///     .max_batch(8)
///     .buckets([4, 8, 16])
///     .admission(
///         AdmissionConfig::new()
///             .queue_capacity(64)
///             .shed_on_full(true)
///             .slo(Duration::from_millis(50)),
///     );
/// # let _ = cfg;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    pub(crate) workers: usize,
    pub(crate) shards: usize,
    pub(crate) max_batch: usize,
    pub(crate) pad_batches: bool,
    pub(crate) buckets: Vec<usize>,
    pub(crate) admission: AdmissionConfig,
}

impl Default for ServerConfig {
    /// One shard, one worker, batches of up to 8, no padding, no length
    /// buckets (every model serves at its native length), admit-everything
    /// admission.
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            shards: 1,
            max_batch: 8,
            pad_batches: false,
            buckets: Vec::new(),
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Worker threads **per shard** executing batches. Distinct models
    /// execute concurrently; one model's batches serialize on its mutex.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Registry shards. Each model lives on exactly one shard (registration
    /// order, round-robin), with its own queue, dispatcher, and worker
    /// pool — so a model's prepacked weight planes stay hot on the workers
    /// that serve it, and one model's overload cannot starve another
    /// shard's queue.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Most requests coalesced into one `forward_batch` call.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Pad every ragged batch up to `max_batch` with zero requests whose
    /// outputs are discarded. Costs compute, but keeps the GEMM shape (and
    /// therefore the per-thread activation-pack scratch size) constant —
    /// the classic fixed-shape serving trade. Semantically invisible either
    /// way.
    pub fn pad_batches(mut self, pad: bool) -> Self {
        self.pad_batches = pad;
        self
    }

    /// Sequence-length bucket edges (strictly increasing) for
    /// variable-length models. A request of length `L` is padded up to the
    /// smallest edge ≥ `L` (capped at the model's native length, which is
    /// always an implicit final edge), so same-bucket requests coalesce
    /// into one fixed-shape batch GEMM. Fixed-length models ignore the
    /// edges — their single native length is the degenerate bucket.
    pub fn buckets(mut self, edges: impl IntoIterator<Item = usize>) -> Self {
        self.buckets = edges.into_iter().collect();
        self
    }

    /// Admission-control policy (queue bound, shedding, latency SLO).
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Whole-config validation, run by [`crate::Server::start`].
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        for (index, window) in self.buckets.windows(2).enumerate() {
            if window
                .first()
                .zip(window.get(1))
                .is_some_and(|(a, b)| b <= a)
            {
                return Err(ConfigError::UnsortedBuckets { index: index + 1 });
            }
        }
        if let Some(index) = self.buckets.iter().position(|&b| b == 0) {
            return Err(ConfigError::ZeroBucket { index });
        }
        if self.admission.queue_capacity == Some(0) {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.admission.slo == Some(Duration::ZERO) {
            return Err(ConfigError::ZeroSlo);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(ServerConfig::default().validate(), Ok(()));
    }

    #[test]
    fn each_invalid_knob_maps_to_its_error() {
        let base = ServerConfig::default;
        assert_eq!(base().workers(0).validate(), Err(ConfigError::ZeroWorkers));
        assert_eq!(base().shards(0).validate(), Err(ConfigError::ZeroShards));
        assert_eq!(
            base().max_batch(0).validate(),
            Err(ConfigError::ZeroMaxBatch)
        );
        assert_eq!(
            base().buckets([0, 4]).validate(),
            Err(ConfigError::ZeroBucket { index: 0 })
        );
        assert_eq!(
            base().buckets([4, 4]).validate(),
            Err(ConfigError::UnsortedBuckets { index: 1 })
        );
        assert_eq!(
            base().buckets([4, 8, 2]).validate(),
            Err(ConfigError::UnsortedBuckets { index: 2 })
        );
        assert_eq!(
            base()
                .admission(AdmissionConfig::new().queue_capacity(0))
                .validate(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            base()
                .admission(AdmissionConfig::new().slo(Duration::ZERO))
                .validate(),
            Err(ConfigError::ZeroSlo)
        );
    }

    #[test]
    fn errors_render_without_debug() {
        let msgs: Vec<String> = [
            ConfigError::ZeroWorkers,
            ConfigError::UnsortedBuckets { index: 3 },
            ConfigError::ZeroSlo,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert!(msgs.iter().all(|m| !m.is_empty()));
        assert!(msgs[1].contains("index 3"));
    }
}
