//! Parallel evaluation of design points: QSNR (Eq. 3 Monte-Carlo) × cost
//! (normalized area-memory product), the two axes of Fig. 7.

use crate::space;
use mx_core::qsnr::{measure_qsnr, Distribution, QsnrConfig};
use mx_core::scaling::ScaleStrategy;
use mx_hw::cost::{CostModel, FormatConfig};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Configuration label.
    pub label: String,
    /// The configuration itself.
    pub config: FormatConfig,
    /// Storage bits per element.
    pub bits_per_element: f64,
    /// Measured QSNR in dB.
    pub qsnr_db: f64,
    /// Normalized dot-product area.
    pub area_norm: f64,
    /// Normalized memory cost.
    pub memory_norm: f64,
    /// Fig. 7 x-axis: area × memory product.
    pub product: f64,
}

/// Sweep evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSettings {
    /// Monte-Carlo settings for the QSNR measurement.
    pub qsnr: QsnrConfig,
    /// Data distribution (the paper's Fig. 7 uses
    /// [`Distribution::NormalVariableVariance`]).
    pub distribution: Distribution,
    /// Number of worker threads.
    pub threads: usize,
}

impl Default for SweepSettings {
    fn default() -> Self {
        SweepSettings {
            qsnr: QsnrConfig {
                vectors: 256,
                vector_len: 1024,
                seed: 0xf1e7,
            },
            distribution: Distribution::NormalVariableVariance,
            threads: mx_core::parallel::default_threads(),
        }
    }
}

/// Evaluates one configuration.
pub fn evaluate_point(
    config: &FormatConfig,
    label: String,
    model: &CostModel,
    settings: &SweepSettings,
) -> SweepPoint {
    let mut q = config.quantizer(ScaleStrategy::default());
    let qsnr_db = measure_qsnr(q.as_mut(), settings.distribution, settings.qsnr);
    let cost = model.evaluate(config);
    SweepPoint {
        label,
        config: config.clone(),
        bits_per_element: config.bits_per_element(),
        qsnr_db,
        area_norm: cost.area_norm,
        memory_norm: cost.memory_norm,
        product: cost.product,
    }
}

/// Evaluates a list of configurations in parallel (order preserved).
///
/// Work is distributed by the shared [`mx_core::parallel::map`] utility —
/// the same chunked front-end the quantization engine uses — so the result
/// is deterministic and identical to a serial evaluation.
pub fn evaluate_all(configs: &[FormatConfig], settings: &SweepSettings) -> Vec<SweepPoint> {
    let model = CostModel::new();
    mx_core::parallel::map(configs, settings.threads, |cfg| {
        evaluate_point(cfg, cfg.label(), &model, settings)
    })
}

/// Evaluates the full Fig. 7 space.
pub fn evaluate_full_space(settings: &SweepSettings) -> Vec<SweepPoint> {
    evaluate_all(&space::full_space(), settings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;

    fn fast_settings() -> SweepSettings {
        SweepSettings {
            qsnr: QsnrConfig {
                vectors: 24,
                vector_len: 256,
                seed: 1,
            },
            distribution: Distribution::NormalVariableVariance,
            threads: 4,
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<FormatConfig> = vec![
            FormatConfig::Bdr(BdrFormat::MX9),
            FormatConfig::Bdr(BdrFormat::MX4),
        ];
        let settings = fast_settings();
        let par = evaluate_all(&configs, &settings);
        let model = CostModel::new();
        for (p, c) in par.iter().zip(configs.iter()) {
            let seq = evaluate_point(c, c.label(), &model, &settings);
            assert_eq!(p, &seq);
        }
    }

    #[test]
    fn points_have_sane_values() {
        let configs = vec![
            FormatConfig::Bdr(BdrFormat::MX6),
            FormatConfig::Int { bits: 8, k1: 1024 },
        ];
        let pts = evaluate_all(&configs, &fast_settings());
        for p in &pts {
            assert!(
                p.qsnr_db > 5.0 && p.qsnr_db < 80.0,
                "{}: {}",
                p.label,
                p.qsnr_db
            );
            assert!(p.product > 0.0 && p.product < 3.0);
            assert!(p.bits_per_element > 0.0);
        }
    }

    #[test]
    fn qsnr_ordering_in_sweep_points() {
        let configs = vec![
            FormatConfig::Bdr(BdrFormat::MX4),
            FormatConfig::Bdr(BdrFormat::MX6),
            FormatConfig::Bdr(BdrFormat::MX9),
        ];
        let pts = evaluate_all(&configs, &fast_settings());
        assert!(pts[0].qsnr_db < pts[1].qsnr_db);
        assert!(pts[1].qsnr_db < pts[2].qsnr_db);
    }
}
