//! The Table II "knee" analysis: how QSNR and cost move when one parameter
//! of an MX format is perturbed — the evidence behind the paper's choice of
//! `d2 = 1`, `k2 = 2`, `k1 = 16`.

use crate::eval::{evaluate_point, SweepPoint, SweepSettings};
use mx_core::bdr::BdrFormat;
use mx_hw::cost::{CostModel, FormatConfig};

/// One perturbation result.
#[derive(Debug, Clone, PartialEq)]
pub struct KneeStep {
    /// What was changed, e.g. `"d2: 1 -> 2"`.
    pub change: String,
    /// Baseline point.
    pub base: SweepPoint,
    /// Perturbed point.
    pub variant: SweepPoint,
}

impl KneeStep {
    /// QSNR gained by the perturbation (dB).
    pub fn qsnr_delta(&self) -> f64 {
        self.variant.qsnr_db - self.base.qsnr_db
    }

    /// Relative cost increase of the perturbation (e.g. `0.3` = +30%).
    pub fn cost_ratio(&self) -> f64 {
        self.variant.product / self.base.product - 1.0
    }
}

fn eval(fmt: BdrFormat, model: &CostModel, settings: &SweepSettings) -> SweepPoint {
    let cfg = FormatConfig::Bdr(fmt);
    evaluate_point(&cfg, cfg.label(), model, settings)
}

/// Runs the paper's three knee perturbations around a base MX format:
/// `d2: 1→2`, `k2: 8→2`, and `k2: 2→1`.
pub fn knee_analysis(base: BdrFormat, settings: &SweepSettings) -> Vec<KneeStep> {
    let model = CostModel::new();
    let (m, d1, k1) = (base.m(), base.d1(), base.k1());
    let mk = |d2: u32, k2: usize| BdrFormat::new(m, d1, d2, k1, k2).expect("valid variant");
    let base_pt = eval(base, &model, settings);
    vec![
        KneeStep {
            change: "d2: 1 -> 2".into(),
            base: base_pt.clone(),
            variant: eval(mk(2, base.k2()), &model, settings),
        },
        KneeStep {
            change: "k2: 8 -> 2".into(),
            base: eval(mk(base.d2(), 8), &model, settings),
            variant: base_pt.clone(),
        },
        KneeStep {
            change: "k2: 2 -> 1".into(),
            base: base_pt,
            variant: eval(mk(base.d2(), 1), &model, settings),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::qsnr::{Distribution, QsnrConfig};

    fn settings() -> SweepSettings {
        SweepSettings {
            qsnr: QsnrConfig {
                vectors: 128,
                vector_len: 1024,
                seed: 5,
            },
            distribution: Distribution::NormalVariableVariance,
            threads: 1,
        }
    }

    /// The paper's §IV-C knee narrative, checked qualitatively: each listed
    /// refinement gains QSNR, and the k2 8→2 step is far cheaper than the
    /// k2 2→1 step.
    #[test]
    fn knee_directions_match_the_paper() {
        let steps = knee_analysis(BdrFormat::MX6, &settings());
        for s in &steps {
            assert!(
                s.qsnr_delta() > 0.0,
                "{} should gain QSNR, got {:.2} dB",
                s.change,
                s.qsnr_delta()
            );
            assert!(s.cost_ratio() > -0.01, "{} should not be free", s.change);
        }
        let k2_8_to_2 = &steps[1];
        let k2_2_to_1 = &steps[2];
        assert!(
            k2_8_to_2.cost_ratio() < 0.10,
            "k2 8->2 should be nearly free, costs {:.1}%",
            100.0 * k2_8_to_2.cost_ratio()
        );
        assert!(
            k2_2_to_1.cost_ratio() > 2.0 * k2_8_to_2.cost_ratio(),
            "k2 2->1 ({:.2}) should cost much more than 8->2 ({:.2})",
            k2_2_to_1.cost_ratio(),
            k2_8_to_2.cost_ratio()
        );
        // And the QSNR gain of 8->2 should be the larger of the two k2 moves
        // (the diminishing-returns knee).
        assert!(k2_8_to_2.qsnr_delta() > k2_2_to_1.qsnr_delta());
    }

    #[test]
    fn d2_upgrade_gains_under_a_db_for_mx9() {
        let steps = knee_analysis(BdrFormat::MX9, &settings());
        let d2_step = &steps[0];
        assert!(
            d2_step.qsnr_delta() < 1.5,
            "d2 1->2 gain should be small at m=7: {:.2} dB",
            d2_step.qsnr_delta()
        );
    }
}
