//! Pareto-frontier extraction over (cost, fidelity) sweep points.

use crate::eval::SweepPoint;

/// Returns the indices of points on the Pareto frontier: no other point has
/// both lower-or-equal product and strictly higher QSNR (or equal QSNR and
/// strictly lower product).
pub fn pareto_indices(points: &[SweepPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Sort by product ascending, QSNR descending as tiebreak.
    idx.sort_by(|&a, &b| {
        points[a]
            .product
            .partial_cmp(&points[b].product)
            .expect("finite products")
            .then(
                points[b]
                    .qsnr_db
                    .partial_cmp(&points[a].qsnr_db)
                    .expect("finite qsnr"),
            )
    });
    let mut frontier = Vec::new();
    let mut best_qsnr = f64::NEG_INFINITY;
    for &i in &idx {
        if points[i].qsnr_db > best_qsnr {
            frontier.push(i);
            best_qsnr = points[i].qsnr_db;
        }
    }
    frontier
}

/// Distance (in dB) from a point to the frontier at its cost: 0 for frontier
/// members; positive values say how far below the achievable QSNR the point
/// sits.
pub fn db_below_frontier(points: &[SweepPoint], target: &SweepPoint) -> f64 {
    let best = points
        .iter()
        .filter(|p| p.product <= target.product + 1e-12)
        .map(|p| p.qsnr_db)
        .fold(f64::NEG_INFINITY, f64::max);
    (best - target.qsnr_db).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;
    use mx_hw::cost::FormatConfig;

    fn point(label: &str, product: f64, qsnr: f64) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            config: FormatConfig::Bdr(BdrFormat::MX9),
            bits_per_element: 9.0,
            qsnr_db: qsnr,
            area_norm: product,
            memory_norm: 1.0,
            product,
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = vec![
            point("cheap-good", 0.3, 20.0),
            point("cheap-bad", 0.3, 10.0), // dominated by cheap-good
            point("mid", 0.5, 25.0),
            point("pricey-worse", 0.7, 24.0), // dominated by mid
            point("pricey-best", 0.9, 40.0),
        ];
        let f = pareto_indices(&pts);
        let labels: Vec<&str> = f.iter().map(|&i| pts[i].label.as_str()).collect();
        assert_eq!(labels, vec!["cheap-good", "mid", "pricey-best"]);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts: Vec<SweepPoint> = (0..50)
            .map(|i| {
                let x = 0.1 + i as f64 * 0.02;
                point(&format!("p{i}"), x, 10.0 + (i as f64 * 7.3) % 30.0)
            })
            .collect();
        let f = pareto_indices(&pts);
        for w in f.windows(2) {
            assert!(pts[w[0]].product <= pts[w[1]].product);
            assert!(pts[w[0]].qsnr_db < pts[w[1]].qsnr_db);
        }
    }

    #[test]
    fn db_below_frontier_zero_for_members() {
        let pts = vec![point("a", 0.3, 20.0), point("b", 0.5, 25.0)];
        assert_eq!(db_below_frontier(&pts, &pts[0]), 0.0);
        assert_eq!(db_below_frontier(&pts, &pts[1]), 0.0);
        let weak = point("w", 0.5, 22.0);
        assert_eq!(db_below_frontier(&pts, &weak), 3.0);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let pts = vec![point("only", 1.0, 5.0)];
        assert_eq!(pareto_indices(&pts), vec![0]);
    }
}
