//! # mx-sweep — design-space exploration for BDR formats
//!
//! The machinery behind Fig. 7 of the paper: enumerate 800+ BDR
//! configurations plus every named competitor ([`space`]), evaluate each
//! point's QSNR and normalized area-memory product in parallel ([`eval`]),
//! extract the Pareto frontier ([`pareto`]), and reproduce the Table II
//! "knee" parameter analysis ([`knee`]).
//!
//! ## Example
//!
//! ```
//! use mx_sweep::eval::{evaluate_all, SweepSettings};
//! use mx_sweep::pareto::pareto_indices;
//! use mx_core::qsnr::{Distribution, QsnrConfig};
//! use mx_hw::cost::FormatConfig;
//! use mx_core::bdr::BdrFormat;
//!
//! let settings = SweepSettings {
//!     qsnr: QsnrConfig { vectors: 32, vector_len: 256, seed: 1 },
//!     distribution: Distribution::NormalVariableVariance,
//!     threads: 2,
//! };
//! let configs = vec![
//!     FormatConfig::Bdr(BdrFormat::MX4),
//!     FormatConfig::Bdr(BdrFormat::MX6),
//!     FormatConfig::Bdr(BdrFormat::MX9),
//! ];
//! let points = evaluate_all(&configs, &settings);
//! let frontier = pareto_indices(&points);
//! assert!(!frontier.is_empty());
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod knee;
pub mod pareto;
pub mod space;

pub use eval::{evaluate_all, evaluate_full_space, SweepPoint, SweepSettings};
pub use pareto::pareto_indices;

#[cfg(test)]
mod tests {
    use super::*;
    use mx_core::bdr::BdrFormat;
    use mx_core::qsnr::{Distribution, QsnrConfig};
    use mx_hw::cost::FormatConfig;

    /// The headline Fig. 7 claim in miniature: on a reduced sweep, the MX
    /// points sit at or very near the Pareto frontier, while scalar FP8 sits
    /// measurably below it.
    #[test]
    fn mx_points_near_frontier_fp8_below() {
        let settings = SweepSettings {
            qsnr: QsnrConfig {
                vectors: 64,
                vector_len: 512,
                seed: 3,
            },
            distribution: Distribution::NormalVariableVariance,
            threads: 4,
        };
        // Reduced but representative space: full m range at the MX shape,
        // plus BFP and scalar FP competitors.
        let mut configs = Vec::new();
        for m in 1..=8u32 {
            configs.push(FormatConfig::Bdr(BdrFormat::new(m, 8, 1, 16, 2).unwrap()));
            configs.push(FormatConfig::Bdr(BdrFormat::new(m, 8, 0, 16, 16).unwrap()));
        }
        for (_, c) in crate::space::named_formats() {
            if !configs.contains(&c) {
                configs.push(c);
            }
        }
        let points = evaluate_all(&configs, &settings);
        let fp8 = points
            .iter()
            .find(|p| p.label == "FP8-E4M3")
            .expect("fp8 present");
        for mx in [BdrFormat::MX6, BdrFormat::MX9] {
            let target = FormatConfig::Bdr(mx);
            let p = points
                .iter()
                .find(|p| p.config == target)
                .expect("mx present");
            let below = pareto::db_below_frontier(&points, p);
            assert!(below < 3.0, "{mx} sits {below:.1} dB below the frontier");
        }
        let fp8_below = pareto::db_below_frontier(&points, fp8);
        assert!(
            fp8_below > 8.0,
            "FP8 should sit well below the block-format frontier, got {fp8_below:.1} dB"
        );
    }
}
