//! Enumeration of the BDR design space: the 800+ configurations behind
//! Fig. 7, plus the named competitor formats (FP8/FP6/FP4 variants, scaled
//! INT, VSQ, MSFP).

use mx_core::bdr::BdrFormat;
use mx_core::scalar::ScalarFormat;
use mx_hw::cost::FormatConfig;

/// Enumerates the generic BDR sweep: `m ∈ 1..=8`, `d1 ∈ {4, 8}`,
/// `d2 ∈ {0, 1, 2}`, `k1 ∈ {8, 16, 32, 64, 128}`, `k2` dividing `k1` up
/// to 16. For `d2 = 0` (classic BFP) the sub-block granularity is
/// meaningless, so only `k2 = k1` is kept.
pub fn bdr_grid() -> Vec<FormatConfig> {
    let mut out = Vec::new();
    for m in 1..=8u32 {
        for d1 in [4u32, 8] {
            for k1 in [8usize, 16, 32, 64, 128] {
                for d2 in [0u32, 1, 2] {
                    if d2 == 0 {
                        if let Ok(fmt) = BdrFormat::new(m, d1, 0, k1, k1) {
                            out.push(FormatConfig::Bdr(fmt));
                        }
                        continue;
                    }
                    for k2 in [1usize, 2, 4, 8, 16] {
                        if k2 > k1 || k1 % k2 != 0 {
                            continue;
                        }
                        if let Ok(fmt) = BdrFormat::new(m, d1, d2, k1, k2) {
                            out.push(FormatConfig::Bdr(fmt));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The named competitor formats plotted in Fig. 7.
pub fn named_formats() -> Vec<(String, FormatConfig)> {
    let mut out: Vec<(String, FormatConfig)> = vec![
        ("MX9".into(), FormatConfig::Bdr(BdrFormat::MX9)),
        ("MX6".into(), FormatConfig::Bdr(BdrFormat::MX6)),
        ("MX4".into(), FormatConfig::Bdr(BdrFormat::MX4)),
        ("MSFP16".into(), FormatConfig::Bdr(BdrFormat::MSFP16)),
        ("MSFP12".into(), FormatConfig::Bdr(BdrFormat::MSFP12)),
    ];
    for (name, fmt) in [
        ("FP8-E5M2", ScalarFormat::E5M2),
        ("FP8-E4M3", ScalarFormat::E4M3),
        ("FP8-E3M4", ScalarFormat::E3M4),
        ("FP6-E3M2", ScalarFormat::FP6_E3M2),
        ("FP6-E2M3", ScalarFormat::FP6_E2M3),
        ("FP4-E2M1", ScalarFormat::FP4_E2M1),
        ("FP4-E1M2", ScalarFormat::FP4_E1M2),
        ("FP4-E3M0", ScalarFormat::FP4_E3M0),
    ] {
        out.push((
            name.into(),
            FormatConfig::ScalarSw {
                format: fmt,
                k1: 10_000,
            },
        ));
    }
    for bits in [4u32, 8] {
        out.push((
            format!("scaled INT{bits}"),
            FormatConfig::Int { bits, k1: 1024 },
        ));
    }
    // VSQ variants: the paper plots the best of d2 ∈ {4, 6, 8, 10} per
    // bit-width; we enumerate all and let the caller pick.
    for bits in [4u32, 6, 8] {
        for d2 in [4u32, 6, 8, 10] {
            out.push((
                format!("VSQ{bits}-d{d2}"),
                FormatConfig::Vsq { bits, d2, k1: 1024 },
            ));
        }
    }
    out
}

/// Full sweep: the grid plus the named formats (deduplicated by label).
pub fn full_space() -> Vec<FormatConfig> {
    let mut out = bdr_grid();
    for (_, c) in named_formats() {
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_exceeds_800_configurations() {
        let n = bdr_grid().len();
        assert!(n >= 800, "paper sweeps 800+ configs; grid has {n}");
    }

    #[test]
    fn grid_has_no_duplicates() {
        let grid = bdr_grid();
        for (i, a) in grid.iter().enumerate() {
            for b in &grid[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn mx_formats_are_in_the_grid() {
        let grid = bdr_grid();
        for fmt in [BdrFormat::MX4, BdrFormat::MX6, BdrFormat::MX9] {
            assert!(grid.contains(&FormatConfig::Bdr(fmt)), "{fmt} missing");
        }
    }

    #[test]
    fn named_formats_cover_the_fig7_legend() {
        let names: Vec<String> = named_formats().into_iter().map(|(n, _)| n).collect();
        for expect in [
            "MX9",
            "MX6",
            "MX4",
            "FP8-E4M3",
            "FP8-E5M2",
            "MSFP16",
            "MSFP12",
            "scaled INT8",
        ] {
            assert!(
                names.iter().any(|n| n == expect),
                "{expect} missing from legend"
            );
        }
        assert!(names.iter().filter(|n| n.starts_with("VSQ")).count() == 12);
    }

    #[test]
    fn full_space_is_superset() {
        let full = full_space();
        assert!(full.len() >= bdr_grid().len());
    }
}
