//! Workspace root crate: re-exports the reproduction's public crates so the
//! repository-level examples and integration tests have a single import root.
//!
//! See [`mx_core`] for the BDR/MX formats, [`mx_hw`] for the hardware cost
//! model, [`mx_nn`] for the training stack, [`mx_models`] for the benchmark
//! model zoo, [`mx_serve`] for the batched inference server, and
//! [`mx_sweep`] for the design-space exploration.
pub use mx_core as core;
pub use mx_hw as hw;
pub use mx_models as models;
pub use mx_nn as nn;
pub use mx_serve as serve;
pub use mx_sweep as sweep;
